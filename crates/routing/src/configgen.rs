//! Router-configuration generation for the §4 prototype.
//!
//! The paper: "the routing configurations at each router can be generated
//! by a simple script to avoid errors." This module *is* that script,
//! driven by the same [`VrfGraph`] the analysis uses, so configuration and
//! model cannot drift apart. For every router it emits an FRR-style
//! configuration implementing Shortest-Union(K):
//!
//! * K VRFs per router, host interfaces in `VRF K`;
//! * one eBGP session per *virtual connection* of the VRF graph, carried
//!   on a VLAN subinterface of the physical link (one /30 per session);
//! * per-direction link costs realized as outbound AS-path prepending
//!   route-maps (`cost c` ⇒ the implicit eBGP hop plus `c − 1` prepends),
//!   exactly the paper's "costs can be set via path prepending in BGP";
//! * one private ASN per router, shared by all its VRFs, so stock AS-path
//!   loop prevention provides the design's loop freedom.
//!
//! The emitted text is deterministic, so golden tests can pin it.

use crate::vrf::VrfGraph;
use spineless_graph::{EdgeId, NodeId};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One router's generated configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterConfig {
    /// The router (switch id).
    pub router: NodeId,
    /// Its BGP autonomous-system number.
    pub asn: u32,
    /// The configuration text (FRR dialect).
    pub text: String,
}

/// A BGP session between `(vrf_a @ edge side A)` and `(vrf_b @ side B)`,
/// with the per-direction advertisement costs from the VRF graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Session {
    /// VRF level at the edge's `a` endpoint.
    vrf_a: u32,
    /// VRF level at the edge's `b` endpoint.
    vrf_b: u32,
    /// Cost of traffic a→b over this session (None: direction unused).
    cost_ab: Option<u32>,
    /// Cost of traffic b→a.
    cost_ba: Option<u32>,
}

/// First private 32-bit-safe ASN; one per router.
const ASN_BASE: u32 = 64_512;

/// ASN of a router.
pub fn asn_of(router: NodeId) -> u32 {
    ASN_BASE + router
}

/// Derives the per-edge session table from the VRF graph's arcs.
///
/// Traffic arc `x@tail → y@head` means the *head* side advertises to the
/// tail side over the `(x, y)` session, with `cost − 1` extra prepends.
fn sessions(vrf: &VrfGraph) -> BTreeMap<EdgeId, Vec<Session>> {
    // (edge, vrf_at_a, vrf_at_b) -> (cost_ab, cost_ba)
    type SessionAcc = BTreeMap<(EdgeId, u32, u32), (Option<u32>, Option<u32>)>;
    let mut acc: SessionAcc = BTreeMap::new();
    for arc in 0..vrf.graph.num_arcs() {
        let (tail, head, cost) = vrf.graph.arc(arc);
        let e = vrf.edge_of_arc(arc);
        let (tr, hr) = (vrf.router_of(tail), vrf.router_of(head));
        let (tl, hl) = (vrf.level_of(tail), vrf.level_of(head));
        // Orient onto the edge's canonical (a, b) endpoints. The physical
        // edge is known to join tr and hr.
        let a_is_tail = {
            // edge endpoints: recover by probing the arc's routers; the
            // VrfGraph doesn't expose the physical graph, so we orient by
            // router id order and store levels accordingly.
            tr < hr
        };
        let key = if a_is_tail { (e, tl, hl) } else { (e, hl, tl) };
        let slot = acc.entry(key).or_insert((None, None));
        if a_is_tail {
            // Arc goes a → b.
            debug_assert!(slot.0.is_none() || slot.0 == Some(cost));
            slot.0 = Some(cost);
        } else {
            debug_assert!(slot.1.is_none() || slot.1 == Some(cost));
            slot.1 = Some(cost);
        }
    }
    let mut out: BTreeMap<EdgeId, Vec<Session>> = BTreeMap::new();
    for ((e, va, vb), (cab, cba)) in acc {
        out.entry(e).or_default().push(Session {
            vrf_a: va,
            vrf_b: vb,
            cost_ab: cab,
            cost_ba: cba,
        });
    }
    out
}

/// /30 subnet for session `sidx` of edge `e`: `10.E_hi.E_lo.(4·sidx)/30`,
/// side a = `.1`, side b = `.2`. Supports 64 sessions/edge, 65k edges.
fn session_ips(e: EdgeId, sidx: usize) -> (String, String) {
    let base = 4 * sidx as u32;
    (
        format!("10.{}.{}.{}", e >> 8 & 0xFF, e & 0xFF, base + 1),
        format!("10.{}.{}.{}", e >> 8 & 0xFF, e & 0xFF, base + 2),
    )
}

/// Generates the full per-router configuration set for `Shortest-Union(K)`
/// over the physical topology captured in `vrf` (router ids follow the
/// topology's switch ids; `edge_ends[e]` are the physical endpoints).
pub fn generate(vrf: &VrfGraph, edge_ends: &[(NodeId, NodeId)]) -> Vec<RouterConfig> {
    let table = sessions(vrf);
    let mut texts: Vec<String> = (0..vrf.routers)
        .map(|r| {
            let mut t = String::new();
            let _ = writeln!(t, "! ---- router r{r} (AS {}) ----", asn_of(r));
            let _ = writeln!(t, "hostname r{r}");
            for level in 1..=vrf.k {
                let _ = writeln!(t, "vrf VRF{level}");
                let _ = writeln!(t, " exit-vrf");
            }
            let _ = writeln!(
                t,
                "! host interfaces live in VRF{} (the paper's host VRF)",
                vrf.k
            );
            t
        })
        .collect();
    // Interfaces + BGP neighbor stanzas per session.
    let mut bgp: Vec<BTreeMap<u32, Vec<String>>> =
        vec![BTreeMap::new(); vrf.routers as usize]; // router -> vrf -> lines
    let mut prepends_used: Vec<std::collections::BTreeSet<u32>> =
        vec![Default::default(); vrf.routers as usize];
    for (&e, sess) in &table {
        let (ra, rb) = {
            let (x, y) = edge_ends[e as usize];
            (x.min(y), x.max(y))
        };
        for (sidx, s) in sess.iter().enumerate() {
            let (ip_a, ip_b) = session_ips(e, sidx);
            let vlan = 100 + sidx as u32;
            for (me, my_vrf, my_ip, peer, peer_ip, my_adv_cost) in [
                // Side a advertises to b with the b→a traffic cost.
                (ra, s.vrf_a, &ip_a, rb, &ip_b, s.cost_ba),
                (rb, s.vrf_b, &ip_b, ra, &ip_a, s.cost_ab),
            ] {
                let t = &mut texts[me as usize];
                let _ = writeln!(t, "interface eth{e}.{vlan} vrf VRF{my_vrf}");
                let _ = writeln!(t, " ip address {my_ip}/30");
                let lines = bgp[me as usize].entry(my_vrf).or_default();
                lines.push(format!(
                    " neighbor {peer_ip} remote-as {}",
                    asn_of(peer)
                ));
                if let Some(c) = my_adv_cost {
                    if c > 1 {
                        lines.push(format!(
                            " neighbor {peer_ip} route-map PREPEND-{c} out"
                        ));
                        prepends_used[me as usize].insert(c);
                    }
                } else {
                    // Direction unused by the design: filter everything out.
                    lines.push(format!(" neighbor {peer_ip} route-map DENY-ALL out"));
                }
                lines.push(format!(" neighbor {peer_ip} maximum-paths 64"));
            }
        }
    }
    // Assemble BGP sections and route-maps.
    for r in 0..vrf.routers as usize {
        let t = &mut texts[r];
        for (vrf_level, lines) in &bgp[r] {
            let _ = writeln!(t, "router bgp {} vrf VRF{vrf_level}", asn_of(r as u32));
            if *vrf_level == vrf.k {
                let _ = writeln!(t, " ! originate the host prefix from the host VRF");
                let _ = writeln!(t, " network 192.168.{}.0/24", r);
            }
            for l in lines {
                let _ = writeln!(t, "{l}");
            }
            let _ = writeln!(t, " exit");
        }
        for &c in &prepends_used[r] {
            let _ = writeln!(t, "route-map PREPEND-{c} permit 10");
            let reps = vec![asn_of(r as u32).to_string(); (c - 1) as usize].join(" ");
            let _ = writeln!(t, " set as-path prepend {reps}");
        }
        if texts[r].contains("DENY-ALL") {
            let _ = writeln!(texts[r], "route-map DENY-ALL deny 10");
        }
    }
    (0..vrf.routers)
        .map(|r| RouterConfig { router: r, asn: asn_of(r), text: std::mem::take(&mut texts[r as usize]) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spineless_topo::dring::DRing;

    fn setup(k: u32) -> (Vec<(NodeId, NodeId)>, VrfGraph, Vec<RouterConfig>) {
        let t = DRing::uniform(6, 2, 24).build();
        let vrf = VrfGraph::build(&t.graph, k);
        let ends = t.graph.edges().to_vec();
        let cfgs = generate(&vrf, &ends);
        (ends, vrf, cfgs)
    }

    #[test]
    fn one_config_per_router_with_unique_asn() {
        let (_, vrf, cfgs) = setup(2);
        assert_eq!(cfgs.len(), vrf.routers as usize);
        let mut asns: Vec<u32> = cfgs.iter().map(|c| c.asn).collect();
        asns.sort_unstable();
        asns.dedup();
        assert_eq!(asns.len(), cfgs.len());
    }

    #[test]
    fn k2_sessions_cover_all_vrf_pairs_per_edge() {
        // For K = 2 the rule set uses all four (vrf_a, vrf_b) combinations
        // on every physical link: 4 sessions, 4 subinterfaces per side.
        let (ends, vrf, cfgs) = setup(2);
        let per_edge = sessions(&vrf);
        assert_eq!(per_edge.len(), ends.len());
        for sess in per_edge.values() {
            assert_eq!(sess.len(), 4);
        }
        // Each router's config mentions one subinterface per session side:
        // every ToR in DRing(6,2) has degree 8, so 8 × 4 = 32.
        for c in &cfgs {
            let n_ifaces = c.text.matches("interface eth").count();
            assert_eq!(n_ifaces, 8 * 4, "router {}", c.router);
        }
    }

    #[test]
    fn prepend_route_maps_match_costs() {
        let (_, _vrf, cfgs) = setup(2);
        for c in &cfgs {
            // K = 2: only cost-2 arcs (rule 1, i = 2) need prepending.
            assert!(c.text.contains("route-map PREPEND-2 permit 10"));
            assert!(!c.text.contains("PREPEND-3"));
            // The prepend adds exactly one copy of the router's own ASN.
            let line = format!(" set as-path prepend {}", c.asn);
            assert!(c.text.contains(&line), "router {}", c.router);
        }
    }

    #[test]
    fn host_vrf_originates_the_prefix() {
        let (_, vrf, cfgs) = setup(2);
        for c in &cfgs {
            let marker = format!("router bgp {} vrf VRF{}", c.asn, vrf.k);
            assert!(c.text.contains(&marker));
            assert!(c.text.contains(&format!("network 192.168.{}.0/24", c.router)));
        }
    }

    #[test]
    fn deterministic_output() {
        let (_, _, a) = setup(2);
        let (_, _, b) = setup(2);
        assert_eq!(a, b);
    }

    #[test]
    fn k3_uses_deeper_prepends() {
        let (_, _, cfgs) = setup(3);
        let any_p3 = cfgs.iter().any(|c| c.text.contains("PREPEND-3"));
        assert!(any_p3, "rule-1 i=3 arcs need two prepends");
        // And the two-copy prepend line exists somewhere.
        let any_two = cfgs
            .iter()
            .any(|c| c.text.contains(&format!("prepend {} {}", c.asn, c.asn)));
        assert!(any_two);
    }

    #[test]
    fn ecmp_configs_have_no_prepends() {
        let (_, _, cfgs) = setup(1);
        for c in &cfgs {
            assert!(!c.text.contains("PREPEND"));
            assert!(c.text.contains("maximum-paths"));
        }
    }
}

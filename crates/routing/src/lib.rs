//! Routing schemes for flat data-center networks, reproducing §4 of
//! *Spineless Data Centers*.
//!
//! The paper evaluates two schemes, both implementable on stock switches:
//!
//! * **ECMP** — standard shortest-path routing with equal-cost multipath
//!   forwarding.
//! * **Shortest-Union(K)** — between two ToRs, use every path that is either
//!   a shortest path or has length ≤ K. Realized on standard hardware by
//!   expanding each router into K VRFs and running plain eBGP shortest-path
//!   routing over the resulting *VRF graph* with per-link AS-path
//!   prepending; Theorem 1 shows the VRF-graph distance between the host
//!   VRFs of routers at physical distance `L` is `max(L, K)`.
//!
//! Modules:
//!
//! * [`vrf`] — the VRF-graph construction and Theorem 1 machinery;
//! * [`fib`] — unified forwarding state ([`ForwardingState`]) for both
//!   schemes (ECMP is the `K = 1` degenerate VRF graph), consumed by the
//!   packet simulator and the fluid model;
//! * [`bgp`] — a distributed eBGP control-plane simulator (path-vector
//!   advertisements, AS-path loop prevention, prepending, multipath) that
//!   converges to the same FIBs — our stand-in for the paper's GNS3 / Cisco
//!   7200 prototype;
//! * [`diversity`] — path-diversity measurements behind the paper's claim
//!   that Shortest-Union(2) exposes ≥ n+1 disjoint paths between any two
//!   DRing racks;
//! * [`adaptive`] — coarse-grained adaptive routing (§7 future work): both
//!   planes provisioned, the source ToR picking ECMP or Shortest-Union per
//!   destination from a static topology-derived rule;
//! * [`failures`] — failure injection and reconvergence analysis (§7
//!   future work): degraded topologies, route stretch, diversity loss, and
//!   BGP reconvergence rounds;
//! * [`expand`] — the link-*addition* dual of the failure-side incremental
//!   rebuild: growing a network (Jellyfish cable replacement, DRing
//!   supernode appends) recomputes only the destinations whose min-cost
//!   DAGs can change, translating the rest — the design-search sweep's
//!   per-cell shortcut;
//! * [`configgen`] — the paper's "simple script" that emits per-router
//!   BGP/VRF configurations (FRR dialect) realizing Shortest-Union(K) on
//!   stock switches, generated from the same VRF graph the analysis uses;
//! * [`vlb`] — flow-level Valiant load balancing, the §2 baseline the
//!   expander literature uses for skewed traffic, as a comparison plane.
//!
//! # A note on the paper's rule listing
//!
//! The HotNets text lists the virtual-connection rules with VRF indices
//! that do not type-check against the proof of Theorem 1 (the proof's
//! cost-`K` witness path *ascends* VRF levels towards the destination's
//! host VRF, while the listed rule 2 descends). We implement the
//! reconstruction that makes the proof go through — see
//! [`vrf::VrfGraph::build`] — and verify Theorem 1 exhaustively in tests
//! and property tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod bgp;
pub mod configgen;
pub mod diversity;
pub mod expand;
pub mod failures;
pub mod fib;
pub mod vlb;
pub mod vrf;

pub use adaptive::DualPlane;
pub use vlb::Vlb;
pub use fib::{FibCache, Forwarding, ForwardingState, RoutingScheme};
pub use vrf::VrfGraph;

//! Valiant load balancing (VLB) — the §2 baseline family.
//!
//! The expander literature the paper builds on (Kassing et al., "Beyond
//! fat-trees without antennae, mirrors, and disco-balls") load-balances
//! skewed traffic by routing each flow through a random intermediate ToR:
//! phase 1 goes `src → via` on shortest paths, phase 2 `via → dst`. This
//! obliterates hot spots at the cost of roughly doubling path length —
//! the exact trade the paper's Shortest-Union(K) tries to get cheaper.
//! We implement flow-level VLB (the `via` is pinned by the flow's hash,
//! like the hybrid scheme's flowlet granularity pins paths) as a
//! [`Forwarding`] plane so every experiment can compare against it.
//!
//! vnode encoding over `R` routers:
//! * `cur` in `[0, R)` — phase 0: at the source, `via` not yet drawn;
//! * `R + via·R + cur` — phase 1: heading to `via`;
//! * `R + R² + cur` — phase 2: heading to `dst`.

use crate::fib::{Forwarding, ForwardingState, RoutingScheme};
use spineless_graph::{EdgeId, Graph, NodeId, UNREACHABLE};

/// Flow-level Valiant load balancing over shortest-path ECMP phases.
#[derive(Debug, Clone)]
pub struct Vlb {
    /// Shortest-path state used by both phases (K = 1).
    pub ecmp: ForwardingState,
    routers: u32,
}

impl Vlb {
    /// Builds VLB forwarding for a physical topology.
    ///
    /// The graph must be connected: phase 1 routes to a uniformly drawn
    /// intermediate switch, so on a partitioned graph a flow whose `via`
    /// lands in another component would have no route even though its
    /// endpoints are mutually reachable.
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected.
    pub fn build(graph: &Graph) -> Vlb {
        assert!(graph.is_connected(), "VLB requires a connected topology");
        let ecmp = ForwardingState::build(graph, RoutingScheme::Ecmp);
        Vlb { routers: graph.num_nodes(), ecmp }
    }

    #[inline]
    fn phase1(&self, via: NodeId, cur: NodeId) -> NodeId {
        self.routers + via * self.routers + cur
    }

    #[inline]
    fn phase2(&self, cur: NodeId) -> NodeId {
        self.routers + self.routers * self.routers + cur
    }

    /// Decodes a vnode into (phase, via-if-phase1, current router).
    fn decode(&self, vnode: NodeId) -> (u8, NodeId, NodeId) {
        let r = self.routers;
        if vnode < r {
            (0, UNREACHABLE, vnode)
        } else if vnode < r + r * r {
            let x = vnode - r;
            (1, x / r, x % r)
        } else {
            (2, UNREACHABLE, vnode - r - r * r)
        }
    }

    /// The via router a flow with `hash` draws at `src` towards `dst`:
    /// uniform over all routers other than src and dst (falls back to
    /// direct phase 2 when no third router exists).
    fn draw_via(&self, src: NodeId, dst: NodeId, hash: u64) -> Option<NodeId> {
        if self.routers <= 2 {
            return None;
        }
        // Rejection-free: index into the router list with src/dst removed.
        let mut v = (hash % (self.routers as u64 - 2)) as u32;
        let (lo, hi) = (src.min(dst), src.max(dst));
        if v >= lo {
            v += 1;
        }
        if v >= hi {
            v += 1;
        }
        Some(v)
    }
}

impl Forwarding for Vlb {
    fn routers(&self) -> u32 {
        self.routers
    }

    fn start(&self, src: NodeId, _dst: NodeId) -> NodeId {
        src // phase 0
    }

    fn delivered(&self, vnode: NodeId, dst: NodeId) -> bool {
        match self.decode(vnode) {
            (0, _, cur) => cur == dst, // same-switch delivery
            (1, via, cur) => cur == dst && via == dst,
            (2, _, cur) => cur == dst,
            _ => unreachable!(),
        }
    }

    fn reachable(&self, src: NodeId, dst: NodeId) -> bool {
        self.ecmp.reachable(src, dst)
    }

    fn router_of(&self, vnode: NodeId) -> NodeId {
        self.decode(vnode).2
    }

    fn next_hop(&self, vnode: NodeId, dst: NodeId, hash: u64) -> (NodeId, EdgeId) {
        let (phase, via, cur) = self.decode(vnode);
        match phase {
            0 => {
                // Draw the via deterministically from the flow hash, then
                // take the first hop of the appropriate phase.
                match self.draw_via(cur, dst, hash) {
                    Some(via) if via != cur => {
                        let (nv, edge) = self.ecmp.next_hop(cur, via, hash);
                        let next = self.ecmp.vrf.router_of(nv);
                        if next == via {
                            (self.phase2(next), edge)
                        } else {
                            (self.phase1(via, next), edge)
                        }
                    }
                    _ => {
                        let (nv, edge) = self.ecmp.next_hop(cur, dst, hash);
                        (self.phase2(self.ecmp.vrf.router_of(nv)), edge)
                    }
                }
            }
            1 => {
                debug_assert_ne!(cur, via, "phase-1 arrival at via re-encodes as phase 2");
                let (nv, edge) = self.ecmp.next_hop(cur, via, hash);
                let next = self.ecmp.vrf.router_of(nv);
                if next == via {
                    (self.phase2(next), edge)
                } else {
                    (self.phase1(via, next), edge)
                }
            }
            _ => {
                let (nv, edge) = self.ecmp.next_hop(cur, dst, hash);
                (self.phase2(self.ecmp.vrf.router_of(nv)), edge)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use spineless_graph::bfs;
    use spineless_topo::dring::DRing;

    fn dring_graph() -> Graph {
        DRing::uniform(6, 3, 32).build().graph
    }

    #[test]
    fn vnode_encoding_roundtrips() {
        let g = dring_graph();
        let v = Vlb::build(&g);
        for cur in 0..g.num_nodes() {
            assert_eq!(v.decode(cur), (0, UNREACHABLE, cur));
            assert_eq!(v.decode(v.phase2(cur)), (2, UNREACHABLE, cur));
            for via in 0..g.num_nodes() {
                assert_eq!(v.decode(v.phase1(via, cur)), (1, via, cur));
            }
        }
    }

    #[test]
    fn via_draw_avoids_endpoints_and_is_uniform_ish() {
        let g = dring_graph();
        let v = Vlb::build(&g);
        let mut seen = std::collections::BTreeSet::new();
        for h in 0..2000u64 {
            let via = v.draw_via(3, 10, h.wrapping_mul(0x9E3779B97F4A7C15)).unwrap();
            assert_ne!(via, 3);
            assert_ne!(via, 10);
            seen.insert(via);
        }
        // All 16 other routers appear.
        assert_eq!(seen.len(), (g.num_nodes() - 2) as usize);
    }

    #[test]
    fn routes_are_two_shortest_phases() {
        let g = dring_graph();
        let v = Vlb::build(&g);
        let dists = bfs::all_pairs_distances(&g);
        let mut rng = SmallRng::seed_from_u64(1);
        for (s, d) in [(0u32, 9u32), (2, 15), (4, 4 + 3)] {
            for _ in 0..32 {
                let route = v.sample_route_generic(s, d, &mut rng).unwrap();
                assert_eq!(route.last().unwrap().0, d);
                // Route length = d(s,via) + d(via,d) for SOME via: bounded
                // by twice the diameter and at least the direct distance.
                let len = route.len() as u32;
                assert!(len >= dists[s as usize][d as usize]);
                let diam = bfs::diameter(&g).unwrap();
                assert!(len <= 2 * diam, "len {len}");
                // Consecutive hops are physical edges.
                let mut cur = s;
                for &(r, e) in &route {
                    let (a, b) = g.edge(e);
                    assert!((a == cur && b == r) || (b == cur && a == r));
                    cur = r;
                }
            }
        }
    }

    #[test]
    fn same_hash_pins_the_via() {
        // Flow-level VLB: the same flow hash must always produce the same
        // route set (one via), like per-flow ECMP pinning.
        let g = dring_graph();
        let v = Vlb::build(&g);
        let hash = 0xABCD_EF01_2345_6789;
        let (nv1, _) = v.next_hop(0, 9, hash);
        let (nv2, _) = v.next_hop(0, 9, hash);
        assert_eq!(nv1, nv2);
    }

    #[test]
    fn mean_route_length_is_about_double_ecmp() {
        let g = dring_graph();
        let v = Vlb::build(&g);
        let ecmp = ForwardingState::build(&g, RoutingScheme::Ecmp);
        let mut rng = SmallRng::seed_from_u64(2);
        let (mut sum_v, mut sum_e, mut n) = (0usize, 0f64, 0u32);
        for s in 0..g.num_nodes() {
            for d in 0..g.num_nodes() {
                if s == d {
                    continue;
                }
                for _ in 0..4 {
                    sum_v += v.sample_route_generic(s, d, &mut rng).unwrap().len();
                    n += 1;
                }
                sum_e += 4.0 * ecmp.expected_route_hops(s, d).unwrap();
            }
        }
        let mean_v = sum_v as f64 / n as f64;
        let mean_e = sum_e / n as f64;
        assert!(
            mean_v > 1.6 * mean_e && mean_v < 2.4 * mean_e,
            "VLB {mean_v:.2} vs ECMP {mean_e:.2}"
        );
    }

    #[test]
    fn vlb_runs_through_the_simulator() {
        use spineless_topo::dring::DRing;
        let topo = DRing::uniform(6, 2, 24).build();
        let vlb = Vlb::build(&topo.graph);
        // Sanity via the Forwarding contract only (the engine lives in
        // spineless-sim, which depends on this crate): walk 200 sampled
        // routes and confirm termination.
        let mut rng = SmallRng::seed_from_u64(3);
        for i in 0..200u32 {
            let s = i % topo.num_switches();
            let d = (i * 7 + 1) % topo.num_switches();
            if s != d {
                let r = vlb.sample_route_generic(s, d, &mut rng).unwrap();
                assert!(!r.is_empty());
            }
        }
    }
}

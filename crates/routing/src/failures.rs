//! Failure injection and reconvergence analysis (paper §7, "Impact of
//! failures").
//!
//! The paper leaves open: "How quickly can routing converge to alternative
//! paths in the presence of failures in a flat network? What is the impact
//! of failures on network paths and load balancing?" This module answers
//! both within the model:
//!
//! * [`FailurePlan`] removes links and/or switches from a topology,
//!   yielding a degraded [`Topology`];
//! * [`incremental_rebuild`] recomputes the degraded forwarding state from
//!   the intact baseline, rebuilding only destinations whose DAGs contain
//!   a failed arc — bit-identical to a full rebuild (pinned in debug
//!   builds, tests and `bench_snapshot`);
//! * [`assess`] / [`assess_with`] quantify the impact: disconnected rack
//!   pairs, route-cost stretch, Shortest-Union path-diversity loss, and
//!   the number of synchronous BGP rounds to reconverge — the §7 question,
//!   answered in rounds of the same control-plane model that §4's
//!   realization runs on.

use crate::bgp;
use crate::diversity::su_disjoint_exact;
use crate::fib::{build_dags, ForwardingState, RoutingScheme};
use crate::vrf::VrfGraph;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use spineless_graph::digraph::ArcId;
use spineless_graph::{CsrSpDag, EdgeId, NodeId, UNREACHABLE};
use spineless_topo::{TopoError, Topology};

/// A set of failures to inject.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailurePlan {
    /// Cables to cut (edge ids in the *original* topology).
    pub failed_links: Vec<EdgeId>,
    /// Switches to power off (their links are cut; their servers are
    /// stranded and excluded from workloads).
    pub failed_switches: Vec<NodeId>,
}

impl FailurePlan {
    /// A plan cutting a uniformly random `fraction` of the cables.
    pub fn random_links<R: Rng>(topo: &Topology, fraction: f64, rng: &mut R) -> FailurePlan {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
        let mut edges: Vec<EdgeId> = (0..topo.graph.num_edges()).collect();
        edges.shuffle(rng);
        let n = ((topo.graph.num_edges() as f64) * fraction).round() as usize;
        edges.truncate(n);
        FailurePlan { failed_links: edges, failed_switches: Vec::new() }
    }

    /// A plan powering off `count` random switches.
    pub fn random_switches<R: Rng>(topo: &Topology, count: u32, rng: &mut R) -> FailurePlan {
        let mut switches: Vec<NodeId> = (0..topo.num_switches()).collect();
        switches.shuffle(rng);
        switches.truncate(count as usize);
        FailurePlan { failed_links: Vec::new(), failed_switches: switches }
    }

    /// Applies the plan: the degraded topology keeps the node id space
    /// (failed switches become isolated, their servers removed) and drops
    /// the failed cables. Edge ids are renumbered densely — rebuild any
    /// forwarding state from the returned topology.
    pub fn apply(&self, topo: &Topology) -> Result<Topology, TopoError> {
        let mut g = topo.graph.without_edges(&self.failed_links);
        for &sw in &self.failed_switches {
            g = g.without_node(sw);
        }
        let mut servers = topo.servers.clone();
        for &sw in &self.failed_switches {
            servers[sw as usize] = 0;
        }
        Topology::new(
            format!(
                "{}-failed(l{},s{})",
                topo.name,
                self.failed_links.len(),
                self.failed_switches.len()
            ),
            g,
            servers,
            topo.ports_per_switch,
        )
    }

    /// The edge-id translation [`FailurePlan::apply`] induces: entry `i` is
    /// the *original* edge id of the degraded topology's edge `i`.
    /// Surviving edges keep their relative order, so the map is simply the
    /// original ids with the dead ones (cut links plus every link of a
    /// powered-off switch) removed. The live simulator uses this to map a
    /// reconverged plane's next hops back onto its original link queues.
    pub fn surviving_edge_map(&self, topo: &Topology) -> Vec<EdgeId> {
        let mut switch_dead = vec![false; topo.graph.num_nodes() as usize];
        for &sw in &self.failed_switches {
            switch_dead[sw as usize] = true;
        }
        let mut edge_dead = vec![false; topo.graph.num_edges() as usize];
        for &e in &self.failed_links {
            edge_dead[e as usize] = true;
        }
        (0..topo.graph.num_edges())
            .filter(|&e| {
                let (a, b) = topo.graph.edge(e);
                !edge_dead[e as usize] && !switch_dead[a as usize] && !switch_dead[b as usize]
            })
            .collect()
    }
}

/// Impact of a failure plan on one (topology, routing scheme) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureImpact {
    /// Ordered rack pairs that lost all connectivity.
    pub disconnected_pairs: u64,
    /// Total surviving ordered rack pairs considered.
    pub surviving_pairs: u64,
    /// Mean route cost (Theorem-1 distance) before failures.
    pub mean_cost_before: f64,
    /// Mean route cost after failures, over still-connected pairs.
    pub mean_cost_after: f64,
    /// Minimum Shortest-Union disjoint-path count before, over sampled
    /// pairs.
    pub min_diversity_before: u32,
    /// ... and after.
    pub min_diversity_after: u32,
    /// Synchronous BGP rounds to converge on the degraded network — the
    /// paper's "how quickly can routing converge" number in control-plane
    /// rounds.
    pub bgp_rounds_after: u32,
}

/// Rebuilds forwarding state for `plan.apply(topo)` incrementally from the
/// intact network's `baseline` state, returning the degraded topology and
/// its state. Bit-identical to `ForwardingState::build(&degraded.graph)`.
///
/// *Why it is exact:* a destination's min-cost paths consist exactly of its
/// DAG's arcs, so if no failed VRF arc is in destination `d`'s baseline
/// DAG, every min-cost path towards `d` survives — distances, reachability
/// and the DAG arc set are all unchanged. Only `d`'s whose DAG contains a
/// failed arc (tested in O(failed arcs) against the baseline distance
/// labels) are rebuilt; the rest translate by arc-id renumbering, valid
/// because [`FailurePlan::apply`] preserves surviving-edge order and
/// [`VrfGraph::build`] emits a fixed arc block per edge, making the
/// degraded arc ids a dense order-preserving renumbering of the survivors.
pub fn incremental_rebuild(
    baseline: &ForwardingState,
    topo: &Topology,
    plan: &FailurePlan,
) -> Result<(Topology, ForwardingState), TopoError> {
    assert_eq!(
        baseline.vrf.routers,
        topo.graph.num_nodes(),
        "baseline state belongs to a different topology"
    );
    let degraded = plan.apply(topo)?;
    let scheme = baseline.scheme;
    let vrf = VrfGraph::build(&degraded.graph, scheme.k());

    // Which original cables died: the cut links plus every link of a
    // powered-off switch.
    let mut switch_dead = vec![false; topo.graph.num_nodes() as usize];
    for &sw in &plan.failed_switches {
        switch_dead[sw as usize] = true;
    }
    let mut edge_dead = vec![false; topo.graph.num_edges() as usize];
    for &e in &plan.failed_links {
        edge_dead[e as usize] = true;
    }
    for e in 0..topo.graph.num_edges() {
        let (a, b) = topo.graph.edge(e);
        if switch_dead[a as usize] || switch_dead[b as usize] {
            edge_dead[e as usize] = true;
        }
    }

    // Split baseline VRF arcs into failed (collected with endpoints and
    // cost for the affected test) and surviving (assigned their dense new
    // id by a running counter).
    const DEAD: ArcId = ArcId::MAX;
    let old_arcs = baseline.vrf.graph.num_arcs();
    let mut arc_map = vec![DEAD; old_arcs as usize];
    let mut failed_arcs: Vec<(NodeId, NodeId, u64)> = Vec::new();
    let mut next_arc: ArcId = 0;
    for a in 0..old_arcs {
        if edge_dead[baseline.vrf.edge_of_arc(a) as usize] {
            let (x, y, w) = baseline.vrf.graph.arc(a);
            failed_arcs.push((x, y, w as u64));
        } else {
            arc_map[a as usize] = next_arc;
            next_arc += 1;
        }
    }
    debug_assert_eq!(next_arc, vrf.graph.num_arcs(), "arc renumbering out of sync");

    // Arc (x → y, w) is in d's DAG iff x is neither the destination nor
    // unreachable and the arc closes the distance gap — the same inclusion
    // rule `CsrSpDag::towards` applies.
    let affected: Vec<NodeId> = (0..baseline.vrf.routers)
        .filter(|&d| {
            let dist = &baseline.dags[d as usize].dist;
            failed_arcs.iter().any(|&(x, y, w)| {
                let (dx, dy) = (dist[x as usize], dist[y as usize]);
                dx != 0 && dx != UNREACHABLE as u64 && dy != UNREACHABLE as u64 && dy + w == dx
            })
        })
        .collect();

    let mut rebuilt = build_dags(&vrf, &affected).into_iter();
    let mut affected_iter = affected.iter().copied().peekable();
    let dags: Vec<CsrSpDag> = (0..baseline.vrf.routers)
        .map(|d| {
            if affected_iter.peek() == Some(&d) {
                affected_iter.next();
                rebuilt.next().expect("one rebuilt DAG per affected destination")
            } else {
                baseline.dags[d as usize].remap_arcs(|a| {
                    let m = arc_map[a as usize];
                    debug_assert_ne!(m, DEAD, "unaffected DAG references a failed arc");
                    m
                })
            }
        })
        .collect();
    Ok((degraded, ForwardingState { scheme, vrf, dags }))
}

/// Assesses a failure plan. `diversity_samples` bounds the (quadratic)
/// disjoint-path measurement to a deterministic subsample of rack pairs.
pub fn assess(
    topo: &Topology,
    scheme: RoutingScheme,
    plan: &FailurePlan,
    diversity_samples: usize,
) -> Result<FailureImpact, TopoError> {
    let baseline = ForwardingState::build(&topo.graph, scheme);
    assess_with(topo, &baseline, plan, diversity_samples)
}

/// [`assess`] against a prebuilt baseline state (share one via
/// `core::cache::RoutingCache` across a failure sweep), with the degraded
/// state produced by [`incremental_rebuild`] instead of a from-scratch
/// build. The scheme is the baseline's.
pub fn assess_with(
    topo: &Topology,
    baseline: &ForwardingState,
    plan: &FailurePlan,
    diversity_samples: usize,
) -> Result<FailureImpact, TopoError> {
    let scheme = baseline.scheme;
    let before = baseline;
    let (degraded, after) = incremental_rebuild(baseline, topo, plan)?;
    #[cfg(debug_assertions)]
    {
        let full = ForwardingState::build(&degraded.graph, scheme);
        debug_assert_eq!(after, full, "incremental rebuild diverged from full rebuild");
    }

    let racks_before = topo.racks();
    let racks_after = degraded.racks();

    // Route costs over surviving rack pairs.
    let (mut sum_b, mut cnt_b) = (0u64, 0u64);
    let (mut sum_a, mut cnt_a) = (0u64, 0u64);
    let mut disconnected = 0u64;
    for &s in &racks_after {
        for &d in &racks_after {
            if s == d {
                continue;
            }
            if let Some(c) = before.route_cost(s, d) {
                sum_b += c;
                cnt_b += 1;
            }
            match after.route_cost(s, d) {
                Some(c) => {
                    sum_a += c;
                    cnt_a += 1;
                }
                None => disconnected += 1,
            }
        }
    }

    // Diversity on a deterministic pair subsample.
    let sample_pairs = |racks: &[NodeId]| -> Vec<(NodeId, NodeId)> {
        let mut pairs = Vec::new();
        'outer: for (i, &s) in racks.iter().enumerate() {
            for &d in racks.iter().skip(i + 1) {
                pairs.push((s, d));
                if pairs.len() >= diversity_samples {
                    break 'outer;
                }
            }
        }
        pairs
    };
    let k = scheme.k().max(2);
    let vrf_b = VrfGraph::build(&topo.graph, k);
    let vrf_a = VrfGraph::build(&degraded.graph, k);
    let min_div = |g: &spineless_graph::Graph,
                   vrf: &VrfGraph,
                   pairs: &[(NodeId, NodeId)]| {
        pairs
            .iter()
            .map(|&(s, d)| su_disjoint_exact(g, vrf, s, d))
            .min()
            .unwrap_or(0)
    };
    let pairs_b = sample_pairs(&racks_before);
    let pairs_a: Vec<(NodeId, NodeId)> = sample_pairs(&racks_after)
        .into_iter()
        .filter(|&(s, d)| {
            let dist = spineless_graph::bfs::distances(&degraded.graph, s);
            dist[d as usize] != UNREACHABLE
        })
        .collect();

    let outcome = bgp::converge(&after.vrf);

    Ok(FailureImpact {
        disconnected_pairs: disconnected,
        surviving_pairs: cnt_a,
        mean_cost_before: sum_b as f64 / cnt_b.max(1) as f64,
        mean_cost_after: sum_a as f64 / cnt_a.max(1) as f64,
        min_diversity_before: min_div(&topo.graph, &vrf_b, &pairs_b),
        min_diversity_after: min_div(&degraded.graph, &vrf_a, &pairs_a),
        bgp_rounds_after: outcome.rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use spineless_topo::dring::DRing;
    use spineless_topo::leafspine::LeafSpine;

    fn dring() -> Topology {
        DRing::uniform(6, 3, 32).build()
    }

    #[test]
    fn apply_cuts_links_and_strands_servers() {
        let t = dring();
        let plan = FailurePlan { failed_links: vec![0, 5], failed_switches: vec![2] };
        let d = plan.apply(&t).unwrap();
        assert_eq!(d.num_switches(), t.num_switches());
        assert!(d.num_links() < t.num_links() - 1);
        assert_eq!(d.servers[2], 0);
        assert_eq!(d.graph.degree(2), 0);
        assert_eq!(d.num_racks(), t.num_racks() - 1);
    }

    #[test]
    fn random_plans_are_sized_and_deterministic() {
        let t = dring();
        let mut rng = SmallRng::seed_from_u64(1);
        let p = FailurePlan::random_links(&t, 0.1, &mut rng);
        assert_eq!(p.failed_links.len(), (t.num_links() as f64 * 0.1).round() as usize);
        let p2 = FailurePlan::random_links(&t, 0.1, &mut SmallRng::seed_from_u64(1));
        assert_eq!(p, p2);
        let ps = FailurePlan::random_switches(&t, 3, &mut rng);
        assert_eq!(ps.failed_switches.len(), 3);
    }

    #[test]
    fn small_failures_keep_dring_connected_with_stretch() {
        let t = dring();
        let mut rng = SmallRng::seed_from_u64(2);
        let plan = FailurePlan::random_links(&t, 0.08, &mut rng);
        let impact = assess(&t, RoutingScheme::ShortestUnion(2), &plan, 40).unwrap();
        assert_eq!(impact.disconnected_pairs, 0, "{impact:?}");
        assert!(impact.mean_cost_after >= impact.mean_cost_before - 1e-9);
        assert!(impact.min_diversity_after <= impact.min_diversity_before);
        assert!(impact.bgp_rounds_after >= 2);
    }

    #[test]
    fn switch_failure_disconnects_nothing_in_leafspine_with_spines_left() {
        // Killing one spine leaves full leaf connectivity via the others.
        let t = LeafSpine::new(6, 3).build();
        let spine0 = t.num_racks(); // first spine id
        let plan = FailurePlan { failed_links: vec![], failed_switches: vec![spine0] };
        let impact = assess(&t, RoutingScheme::Ecmp, &plan, 20).unwrap();
        assert_eq!(impact.disconnected_pairs, 0);
        // Path cost unchanged (still 2 hops via surviving spines).
        assert!((impact.mean_cost_after - impact.mean_cost_before).abs() < 1e-9);
    }

    #[test]
    fn catastrophic_failure_disconnects() {
        // Cut every link of a DRing supernode's first ToR: its rack pairs
        // disconnect.
        let t = dring();
        let victim = 0u32;
        let links: Vec<EdgeId> = (0..t.graph.num_edges())
            .filter(|&e| {
                let (a, b) = t.graph.edge(e);
                a == victim || b == victim
            })
            .collect();
        let plan = FailurePlan { failed_links: links, failed_switches: vec![] };
        let impact = assess(&t, RoutingScheme::ShortestUnion(2), &plan, 20).unwrap();
        // Victim still hosts servers but has no links: pairs to/from it die.
        assert!(impact.disconnected_pairs > 0);
    }

    #[test]
    fn surviving_edge_map_matches_apply_renumbering() {
        // The map must translate every degraded edge id back to an
        // original edge with the same endpoints — this is the contract the
        // simulator's mid-run plane swap rests on.
        let t = dring();
        let mut rng = SmallRng::seed_from_u64(11);
        let mut plan = FailurePlan::random_links(&t, 0.15, &mut rng);
        plan.failed_switches = vec![3];
        let d = plan.apply(&t).unwrap();
        let map = plan.surviving_edge_map(&t);
        assert_eq!(map.len() as u32, d.graph.num_edges());
        for e in 0..d.graph.num_edges() {
            assert_eq!(d.graph.edge(e), t.graph.edge(map[e as usize]), "degraded edge {e}");
        }
        // Dead edges never appear in the map.
        for &dead in &plan.failed_links {
            assert!(!map.contains(&dead));
        }
    }

    #[test]
    fn incremental_rebuild_matches_full_rebuild() {
        let t = dring();
        for scheme in [RoutingScheme::Ecmp, RoutingScheme::ShortestUnion(2)] {
            let baseline = ForwardingState::build(&t.graph, scheme);
            let mut rng = SmallRng::seed_from_u64(9);
            for round in 0..4 {
                let mut plan = FailurePlan::random_links(&t, 0.1, &mut rng);
                plan.failed_switches =
                    FailurePlan::random_switches(&t, round % 3, &mut rng).failed_switches;
                let (degraded, inc) = incremental_rebuild(&baseline, &t, &plan).unwrap();
                let full = ForwardingState::build(&degraded.graph, scheme);
                assert_eq!(inc, full, "{} round {round}", scheme.label());
            }
        }
    }

    #[test]
    fn incremental_rebuild_of_empty_plan_is_the_baseline() {
        let t = dring();
        let baseline = ForwardingState::build(&t.graph, RoutingScheme::ShortestUnion(2));
        let (degraded, inc) =
            incremental_rebuild(&baseline, &t, &FailurePlan::default()).unwrap();
        assert_eq!(degraded.graph.num_edges(), t.graph.num_edges());
        assert_eq!(inc, baseline);
    }

    #[test]
    fn assess_with_matches_assess() {
        let t = dring();
        let scheme = RoutingScheme::ShortestUnion(2);
        let plan = FailurePlan::random_links(&t, 0.08, &mut SmallRng::seed_from_u64(3));
        let baseline = ForwardingState::build(&t.graph, scheme);
        let direct = assess(&t, scheme, &plan, 40).unwrap();
        let cached = assess_with(&t, &baseline, &plan, 40).unwrap();
        assert_eq!(direct, cached);
    }

    #[test]
    #[should_panic(expected = "different topology")]
    fn incremental_rebuild_rejects_foreign_baseline() {
        let t = dring();
        let other = LeafSpine::new(6, 3).build();
        let baseline = ForwardingState::build(&other.graph, RoutingScheme::Ecmp);
        let _ = incremental_rebuild(&baseline, &t, &FailurePlan::default());
    }

    #[test]
    #[should_panic(expected = "fraction out of range")]
    fn rejects_bad_fraction() {
        let t = dring();
        FailurePlan::random_links(&t, 1.5, &mut SmallRng::seed_from_u64(0));
    }
}

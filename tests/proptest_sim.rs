//! Property-based tests for the packet simulator and the fluid solver:
//! whatever the workload, conservation laws and fairness invariants hold.

use proptest::prelude::*;
use spineless::fluid::{max_min_rates, solve, LinkSpace};
use spineless::prelude::*;
use spineless::routing::Forwarding;

/// (src, dst, bytes, start_ns) tuples.
type RandomFlows = Vec<(u32, u32, u64, u64)>;

/// Strategy: a small DRing or leaf-spine plus a batch of random flows.
fn topo_and_flows() -> impl Strategy<Value = (Topology, RoutingScheme, RandomFlows)> {
    (any::<bool>(), any::<u64>(), 1usize..24).prop_map(|(dring, seed, nflows)| {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let topo = if dring {
            DRing::uniform(6, 2, 24).build()
        } else {
            LeafSpine::new(6, 2).build()
        };
        let scheme = if dring {
            RoutingScheme::ShortestUnion(2)
        } else {
            RoutingScheme::Ecmp
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = topo.num_servers();
        let flows: Vec<(u32, u32, u64, u64)> = (0..nflows)
            .map(|_| {
                let src = rng.gen_range(0..n);
                let dst = loop {
                    let d = rng.gen_range(0..n);
                    if d != src {
                        break d;
                    }
                };
                (src, dst, rng.gen_range(1..200_000u64), rng.gen_range(0..500_000u64))
            })
            .collect();
        (topo, scheme, flows)
    })
}

/// Strategy for the datapath-equivalence tests: the ISSUE's random
/// DRing/RRG (plus leaf-spine for the pure-ECMP plane) with random flows
/// and transport knobs. Kept separate from [`topo_and_flows`] because RRGs
/// at this size are occasionally disconnected — the datapath tests skip
/// unreachable flows identically on both runs, while the fluid tests
/// assume full reachability.
fn datapath_topo_and_flows(
) -> impl Strategy<Value = (Topology, RoutingScheme, RandomFlows, bool, bool)> {
    (0u8..3, any::<u64>(), 1usize..24, any::<bool>(), any::<bool>()).prop_map(
        |(kind, seed, nflows, dctcp, flowlets)| {
            use rand::rngs::SmallRng;
            use rand::{Rng, SeedableRng};
            let (topo, scheme) = match kind {
                0 => (DRing::uniform(6, 2, 24).build(), RoutingScheme::ShortestUnion(2)),
                1 => (Rrg::uniform(8, 3, 2, 5, seed).build(), RoutingScheme::ShortestUnion(2)),
                _ => (LeafSpine::new(6, 2).build(), RoutingScheme::Ecmp),
            };
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xDA7A);
            let n = topo.num_servers();
            let flows: RandomFlows = (0..nflows)
                .map(|_| {
                    let src = rng.gen_range(0..n);
                    let dst = loop {
                        let d = rng.gen_range(0..n);
                        if d != src {
                            break d;
                        }
                    };
                    (src, dst, rng.gen_range(1..200_000u64), rng.gen_range(0..500_000u64))
                })
                .collect();
            (topo, scheme, flows, dctcp, flowlets)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every admitted flow eventually completes, FCTs are bounded below by
    /// the serialization time, and delivered bytes cover every flow.
    #[test]
    fn all_flows_complete_and_fcts_are_physical(
        (topo, scheme, flows) in topo_and_flows()
    ) {
        let fs = ForwardingState::build(&topo.graph, scheme);
        let mut sim = Simulation::new(&topo, fs, SimConfig::default(), 1);
        for &(s, d, b, t) in &flows {
            sim.add_flow(s, d, b, t).expect("valid flow");
        }
        let report = sim.run();
        prop_assert_eq!(report.unfinished(), 0);
        let total: u64 = flows.iter().map(|f| f.2).sum();
        prop_assert!(report.delivered_bytes >= total);
        for rec in &report.flows {
            let fct = rec.fct_ns.expect("finished") as f64;
            // Lower bound: last byte must serialize over at least one link
            // at 1.25 B/ns plus one propagation delay.
            let floor = rec.bytes as f64 / 1.25;
            prop_assert!(fct >= floor, "fct {fct} below physical floor {floor}");
        }
    }

    /// Bit-identical reruns: the simulator is a pure function of
    /// (topology, flows, seed).
    #[test]
    fn simulator_is_deterministic((topo, scheme, flows) in topo_and_flows()) {
        let run = || {
            let fs = ForwardingState::build(&topo.graph, scheme);
            let mut sim = Simulation::new(&topo, fs, SimConfig::default(), 7);
            for &(s, d, b, t) in &flows {
                sim.add_flow(s, d, b, t).expect("valid flow");
            }
            let r = sim.run();
            (r.fcts(), r.events, r.dropped_packets)
        };
        prop_assert_eq!(run(), run());
    }

    /// Fluid solver: no directed link is over capacity, every finite-rate
    /// flow crosses at least one saturated link (max-min bottleneck
    /// property), and all rates are positive.
    #[test]
    fn fluid_allocation_is_max_min((topo, scheme, flows) in topo_and_flows()) {
        let fs = ForwardingState::build(&topo.graph, scheme);
        let demands: Vec<(u32, u32)> = flows.iter().map(|f| (f.0, f.1)).collect();
        let space = LinkSpace::new(&topo);
        // Re-derive the per-flow link sets exactly as solve() does, using
        // the same seed, to audit the allocation.
        let sol = solve(&topo, &fs, &demands, 99);
        prop_assert_eq!(sol.rates.len(), demands.len());
        // Reconstruct usage.
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        let mut links_per_flow: Vec<Vec<u32>> = Vec::new();
        for &(s, d) in &demands {
            let ssw = topo.switch_of(s);
            let dsw = topo.switch_of(d);
            let mut links = vec![space.uplink(s)];
            if ssw != dsw {
                let route = fs.sample_route_generic(ssw, dsw, &mut rng).expect("reachable");
                let mut cur = ssw;
                for &(next, edge) in &route {
                    links.push(space.switch_link(edge, cur));
                    cur = next;
                }
            }
            links.push(space.downlink(d));
            links_per_flow.push(links);
        }
        let mut used = vec![0.0f64; space.num_links() as usize];
        for (fl, &r) in links_per_flow.iter().zip(&sol.rates) {
            prop_assert!(r > 0.0);
            for &l in fl {
                used[l as usize] += r;
            }
        }
        for (l, &u) in used.iter().enumerate() {
            prop_assert!(u <= 1.0 + 1e-6, "link {l} over capacity: {u}");
        }
        // Bottleneck property.
        for (i, fl) in links_per_flow.iter().enumerate() {
            let bottlenecked = fl.iter().any(|&l| used[l as usize] >= 1.0 - 1e-6);
            prop_assert!(bottlenecked, "flow {i} has spare capacity everywhere");
        }
    }

    /// The calendar queue dequeues any batch of (t, seq) events in exactly
    /// sorted order — same-timestamp ties broken by insertion seq, and
    /// far-future (RTO-like) events surviving the trip through the
    /// overflow heap — across a range of wheel geometries.
    #[test]
    fn calendar_queue_dequeues_in_sorted_order(
        seed in any::<u64>(), n in 1usize..400, shift in 0u32..14, buckets in 2usize..64
    ) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        use spineless::sim::CalendarQueue;
        let mut rng = SmallRng::seed_from_u64(seed);
        let batch: Vec<u64> = (0..n)
            .map(|_| match rng.gen_range(0..10u32) {
                // Near-future traffic: the TxDone/Arrive regime.
                0..=5 => rng.gen_range(0..100_000u64),
                // Heavy same-timestamp ties.
                6..=7 => rng.gen_range(0..16u64) * 1_000,
                // RTO-like events far beyond any wheel horizon.
                8 => 1_000_000 + rng.gen_range(0..50_000_000u64),
                // Extreme outliers.
                _ => rng.gen_range(0..(u64::MAX >> 20)),
            })
            .collect();
        let mut expected: Vec<(u64, u64)> =
            batch.iter().enumerate().map(|(i, &t)| (t, i as u64)).collect();
        expected.sort_unstable();
        let mut q: CalendarQueue<u32> = CalendarQueue::with_geometry(shift, buckets);
        for (i, &t) in batch.iter().enumerate() {
            q.push(t, i as u64, i as u32);
        }
        prop_assert_eq!(q.len(), n);
        let mut out = Vec::with_capacity(n);
        while let Some((t, s, _)) = q.pop() {
            out.push((t, s));
        }
        prop_assert_eq!(out, expected);
        prop_assert!(q.is_empty());
    }

    /// Whole-simulation scheduler equivalence: calendar queue and
    /// reference heap produce byte-identical reports on random workloads.
    #[test]
    fn schedulers_agree_on_random_workloads((topo, scheme, flows) in topo_and_flows()) {
        let run = |scheduler| {
            let fs = ForwardingState::build(&topo.graph, scheme);
            let cfg = SimConfig { scheduler, ..Default::default() };
            let mut sim = Simulation::new(&topo, fs, cfg, 5);
            for &(s, d, b, t) in &flows {
                sim.add_flow(s, d, b, t).expect("valid flow");
            }
            let r = sim.run();
            (r.fcts(), r.events, r.dropped_packets, r.delivered_bytes)
        };
        prop_assert_eq!(run(Scheduler::Calendar), run(Scheduler::ReferenceHeap));
    }

    /// Whole-simulation datapath equivalence: the fast per-packet path
    /// (flat FIB hot-cache, RTO timer wheel, terminal-TxDone elision,
    /// zero-alloc TCP turnaround) and the retained reference path produce
    /// identical physics on random DRing/RRG/leaf-spine workloads under
    /// both transports and with/without flowlet switching — FCTs, drops,
    /// delivered bytes, packet-hops, and per-link tx bytes all byte-equal.
    /// `SimReport::events` is deliberately excluded: elided terminal
    /// TxDones mean the fast path processes fewer events by design.
    #[test]
    fn datapaths_agree_on_random_workloads(
        (topo, scheme, flows, dctcp, flowlets) in datapath_topo_and_flows()
    ) {
        use spineless::sim::types::Transport;
        let run = |datapath| {
            let fs = ForwardingState::build(&topo.graph, scheme);
            let cfg = SimConfig {
                datapath,
                transport: if dctcp { Transport::Dctcp } else { Transport::NewReno },
                flowlet_gap_ns: if flowlets { Some(10_000) } else { None },
                ..Default::default()
            };
            let mut sim = Simulation::new(&topo, fs, cfg, 5);
            for &(s, d, b, t) in &flows {
                // RRGs can be disconnected; rejected flows are rejected
                // identically on both runs.
                let _ = sim.add_flow(s, d, b, t);
            }
            let r = sim.run();
            let hops = sim.pkt_hops();
            let tx = sim.switch_link_tx_bytes();
            (r.fcts(), r.dropped_packets, r.delivered_bytes, hops, tx)
        };
        prop_assert_eq!(run(Datapath::Fast), run(Datapath::Reference));
    }

    /// Datapath equivalence under truncation: a hard `max_time_ns` stop
    /// leaves both paths with the identical set of finished/unfinished
    /// flows and identical partial byte counts.
    #[test]
    fn datapaths_agree_under_truncation(
        (topo, scheme, flows, dctcp, flowlets) in datapath_topo_and_flows(),
        horizon in 50_000u64..2_000_000
    ) {
        use spineless::sim::types::Transport;
        let run = |datapath| {
            let fs = ForwardingState::build(&topo.graph, scheme);
            let cfg = SimConfig {
                datapath,
                max_time_ns: horizon,
                transport: if dctcp { Transport::Dctcp } else { Transport::NewReno },
                flowlet_gap_ns: if flowlets { Some(10_000) } else { None },
                ..Default::default()
            };
            let mut sim = Simulation::new(&topo, fs, cfg, 5);
            for &(s, d, b, t) in &flows {
                let _ = sim.add_flow(s, d, b, t);
            }
            let r = sim.run();
            let hops = sim.pkt_hops();
            let tx = sim.switch_link_tx_bytes();
            (r.fcts(), r.unfinished(), r.dropped_packets, r.delivered_bytes, hops, tx)
        };
        prop_assert_eq!(run(Datapath::Fast), run(Datapath::Reference));
    }

    /// Datapath equivalence under live fault injection: a random schedule
    /// of link/switch down/up events (including repairs of never-failed
    /// elements and repeat cuts, which must be idempotent) with a random
    /// reconvergence delay — from "reacts in 50 us" to "never reacts
    /// within the horizon", the blackhole regime. The fast and reference
    /// paths must produce identical FCTs, finished/unfinished splits,
    /// drops, delivered bytes, packet-hops, and per-link tx bytes, and
    /// the accounting must stay physical: delivered bytes (which count
    /// duplicate deliveries from retransmissions) cover every finished
    /// flow in full.
    #[test]
    fn datapaths_agree_under_random_failure_schedules(
        (topo, scheme, flows, dctcp, flowlets) in datapath_topo_and_flows(),
        raw_events in prop::collection::vec(
            (0u64..3_000_000, 0u8..4, any::<u32>()), 1..6),
        delay in prop_oneof![
            Just(50_000u64),
            Just(100_000u64),
            Just(500_000u64),
            // Far beyond the horizon: the control plane never reacts.
            Just(3_600_000_000_000u64)
        ],
    ) {
        use spineless::sim::types::Transport;
        use std::sync::Arc;
        let ne = topo.graph.edges().len() as u32;
        let nsw = topo.num_switches();
        let mut sched = FailureSchedule::new(delay);
        for &(t, kind, target) in &raw_events {
            sched = match kind {
                0 => sched.link_down(t, target % ne),
                1 => sched.link_up(t, target % ne),
                2 => sched.switch_down(t, target % nsw),
                _ => sched.switch_up(t, target % nsw),
            };
        }
        let run = |datapath| {
            let fs = Arc::new(ForwardingState::build(&topo.graph, scheme));
            let cfg = SimConfig {
                datapath,
                // Finite horizon: a blackholed or stranded flow must end
                // the run instead of hanging it.
                max_time_ns: 20_000_000,
                transport: if dctcp { Transport::Dctcp } else { Transport::NewReno },
                flowlet_gap_ns: if flowlets { Some(10_000) } else { None },
                ..Default::default()
            };
            let mut sim = Simulation::new(&topo, Arc::clone(&fs), cfg, 5);
            for &(s, d, b, t) in &flows {
                let _ = sim.add_flow(s, d, b, t);
            }
            sim.set_failure_schedule(&topo, fs, sched.clone())
                .expect("schedule targets this topology's own elements");
            let r = sim.run();
            let finished_bytes: u64 =
                r.flows.iter().filter(|f| f.fct_ns.is_some()).map(|f| f.bytes).sum();
            let hops = sim.pkt_hops();
            let tx = sim.switch_link_tx_bytes();
            (
                r.fcts(),
                r.unfinished(),
                r.dropped_packets,
                r.delivered_bytes,
                hops,
                tx,
                finished_bytes,
            )
        };
        let fast = run(Datapath::Fast);
        prop_assert!(
            fast.3 >= fast.6,
            "delivered {} below finished flows' {}", fast.3, fast.6
        );
        prop_assert_eq!(fast, run(Datapath::Reference));
    }

    /// PFC lossless fabrics never tail-drop a data packet: across random
    /// DRing/RRG/leaf-spine topologies, all three transports, optional
    /// failure schedules, and both datapaths, `congestion_drops` stays
    /// zero (dead-link flushes are the only permitted loss), delivered
    /// bytes cover every finished flow, and the fast and reference paths
    /// stay byte-identical under pause/resume — including the pause/resume
    /// counters themselves.
    #[test]
    fn pfc_is_lossless_on_random_workloads(
        (topo, scheme, flows, dctcp, _flowlets) in datapath_topo_and_flows(),
        gbn in any::<bool>(),
        with_failures in any::<bool>(),
        raw_events in prop::collection::vec(
            (0u64..3_000_000, 0u8..4, any::<u32>()), 1..5),
    ) {
        use spineless::sim::types::{PfcConfig, Transport};
        use std::sync::Arc;
        let sched = with_failures.then(|| {
            let ne = topo.graph.edges().len() as u32;
            let nsw = topo.num_switches();
            let mut sched = FailureSchedule::new(100_000);
            for &(t, kind, target) in &raw_events {
                sched = match kind {
                    0 => sched.link_down(t, target % ne),
                    1 => sched.link_up(t, target % ne),
                    2 => sched.switch_down(t, target % nsw),
                    _ => sched.switch_up(t, target % nsw),
                };
            }
            sched
        });
        let run = |datapath| {
            let fs = Arc::new(ForwardingState::build(&topo.graph, scheme));
            let cfg = SimConfig {
                datapath,
                pfc: Some(PfcConfig { xoff_bytes: 20_000, xon_bytes: 8_000 }),
                // Finite horizon: PFC on a cyclic flat fabric can deadlock
                // (the paper's pause-tree pathology), and blackholed flows
                // must end the run instead of hanging it.
                max_time_ns: 20_000_000,
                transport: if gbn {
                    Transport::GoBackN
                } else if dctcp {
                    Transport::Dctcp
                } else {
                    Transport::NewReno
                },
                ..Default::default()
            };
            let mut sim = Simulation::new(&topo, Arc::clone(&fs), cfg, 5);
            for &(s, d, b, t) in &flows {
                let _ = sim.add_flow(s, d, b, t);
            }
            if let Some(sch) = &sched {
                sim.set_failure_schedule(&topo, fs, sch.clone())
                    .expect("schedule targets this topology's own elements");
            }
            let r = sim.run();
            let finished_bytes: u64 =
                r.flows.iter().filter(|f| f.fct_ns.is_some()).map(|f| f.bytes).sum();
            let hops = sim.pkt_hops();
            let tx = sim.switch_link_tx_bytes();
            (
                r.congestion_drops,
                r.fcts(),
                r.unfinished(),
                r.delivered_bytes,
                r.pause_frames,
                r.resume_frames,
                r.links_ever_paused,
                r.max_ingress_backlog,
                finished_bytes,
                hops,
                tx,
            )
        };
        let fast = run(Datapath::Fast);
        prop_assert_eq!(fast.0, 0, "PFC tail-dropped a data packet");
        prop_assert!(
            fast.3 >= fast.8,
            "delivered {} below finished flows' {}", fast.3, fast.8
        );
        prop_assert_eq!(fast, run(Datapath::Reference));
    }

    /// Go-back-N on a plain drop-tail (lossy) fabric still completes every
    /// admitted flow and delivers every byte: NACK rollback plus RTO-driven
    /// window resends cover arbitrary loss patterns, down to queues barely
    /// two MTUs deep.
    #[test]
    fn gbn_delivers_all_bytes_despite_drops(
        (topo, scheme, flows) in topo_and_flows(),
        queue_kb in 3u64..16,
    ) {
        use spineless::sim::types::Transport;
        let fs = ForwardingState::build(&topo.graph, scheme);
        let cfg = SimConfig {
            transport: Transport::GoBackN,
            queue_bytes: queue_kb * 1_000,
            // Generous ceiling so a pathological workload fails the
            // unfinished() assertion instead of spinning.
            max_time_ns: 10_000_000_000,
            ..Default::default()
        };
        let mut sim = Simulation::new(&topo, fs, cfg, 9);
        for &(s, d, b, t) in &flows {
            sim.add_flow(s, d, b, t).expect("valid flow");
        }
        let r = sim.run();
        prop_assert_eq!(r.unfinished(), 0);
        let total: u64 = flows.iter().map(|f| f.2).sum();
        prop_assert!(r.delivered_bytes >= total);
    }

    /// The sharded conservative-parallel engine is pinned to its own
    /// single-domain serial reference the same way `Datapath::Fast` is
    /// pinned to `Reference`: identical full reports (FCTs, retransmit
    /// counters, drops, delivered bytes, event count, end time) plus
    /// packet-hops and the per-link transmitted-byte vector, across
    /// random DRing/RRG/leaf-spine fabrics, both transports, optional
    /// flowlets, optional failure schedules, 1–8 shards, and both
    /// execution modes.
    #[test]
    fn sharded_engine_matches_reference(
        (topo, scheme, flows, dctcp, flowlets) in datapath_topo_and_flows(),
        shards in 1u32..=8,
        parallel in any::<bool>(),
        with_failures in any::<bool>(),
        raw_events in prop::collection::vec(
            (0u64..3_000_000, 0u8..4, any::<u32>()), 1..5),
    ) {
        use spineless::sim::types::Transport;
        use spineless::sim::{ExecMode, ShardedSimulation};
        use std::sync::Arc;
        let cfg = SimConfig {
            max_time_ns: 20_000_000,
            transport: if dctcp { Transport::Dctcp } else { Transport::NewReno },
            flowlet_gap_ns: if flowlets { Some(10_000) } else { None },
            ..Default::default()
        };
        let fs = Arc::new(ForwardingState::build(&topo.graph, scheme));
        let sched = with_failures.then(|| {
            let ne = topo.graph.edges().len() as u32;
            let nsw = topo.num_switches();
            let mut sched = FailureSchedule::new(100_000);
            for &(t, kind, target) in &raw_events {
                sched = match kind {
                    0 => sched.link_down(t, target % ne),
                    1 => sched.link_up(t, target % ne),
                    2 => sched.switch_down(t, target % nsw),
                    _ => sched.switch_up(t, target % nsw),
                };
            }
            sched
        });
        let run = |k: u32, mode: ExecMode| {
            let mut sim = ShardedSimulation::new(&topo, Arc::clone(&fs), cfg, 5, k, mode);
            for &(s, d, b, t) in &flows {
                // RRGs at this size are occasionally disconnected; skip
                // unreachable flows identically on every run.
                let _ = sim.add_flow(s, d, b, t);
            }
            if let Some(sch) = &sched {
                sim.set_failure_schedule(&topo, Arc::clone(&fs), sch.clone())
                    .expect("schedule targets this topology's own elements");
            }
            let report = sim.run();
            (report, sim.pkt_hops(), sim.switch_link_tx_bytes())
        };
        let reference = run(1, ExecMode::Serial);
        let mode = if parallel { ExecMode::Parallel } else { ExecMode::Serial };
        prop_assert_eq!(run(shards, mode), reference);
    }

    /// The RTO timer wheel against a sorted-set model: arbitrary
    /// interleavings of (re-)arms, cancels, and bounded sweeps drain in
    /// exact `(time, seq)` order with the right `(key, gen)` payloads,
    /// across all wheel levels and the overflow bucket.
    #[test]
    fn timer_wheel_matches_sorted_model(seed in any::<u64>(), nops in 1usize..300) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        use spineless::sim::TimerWheel;
        use std::collections::BTreeSet;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut wheel = TimerWheel::new();
        let mut model: BTreeSet<(u64, u64, u32, u64)> = BTreeSet::new();
        // key -> live (t, seq, gen), mirroring the engine's one-timer-per-
        // flow discipline (re-arm cancels first).
        let mut armed: Vec<Option<(u64, u64, u64)>> = vec![None; 8];
        let mut seq = 0u64;
        let mut lo = 0u64; // inserts stay >= the last sweep bound, like real time
        for _ in 0..nops {
            let key = rng.gen_range(0..8u32);
            match rng.gen_range(0..6u32) {
                0..=2 => {
                    if let Some((t, s, g)) = armed[key as usize].take() {
                        prop_assert!(wheel.cancel(key));
                        model.remove(&(t, s, key, g));
                    }
                    seq += 1;
                    let dt = match rng.gen_range(0..4u32) {
                        0 => rng.gen_range(0..1u64 << 16),  // level 0
                        1 => rng.gen_range(0..1u64 << 22),  // level 1
                        2 => rng.gen_range(0..1u64 << 40),  // deep levels
                        _ => 1u64 << 46,                    // overflow bucket
                    };
                    let t = lo + dt;
                    let gen = rng.gen();
                    wheel.insert(t, seq, key, gen);
                    model.insert((t, seq, key, gen));
                    armed[key as usize] = Some((t, seq, gen));
                }
                3 | 4 => {
                    let had = armed[key as usize].take();
                    prop_assert_eq!(wheel.cancel(key), had.is_some());
                    if let Some((t, s, g)) = had {
                        model.remove(&(t, s, key, g));
                    }
                }
                _ => {
                    // Bounded sweep, as the engine merges wheel timers
                    // into the event stream.
                    let bound = (lo + rng.gen_range(0..1u64 << 24), rng.gen());
                    while let Some(fired) = wheel.pop_before(bound) {
                        let expected = *model.iter().next().expect("model has an entry");
                        prop_assert_eq!(fired, expected);
                        prop_assert!((fired.0, fired.1) < bound);
                        model.remove(&expected);
                        armed[fired.2 as usize] = None;
                    }
                    if let Some(first) = model.iter().next() {
                        prop_assert!((first.0, first.1) >= bound);
                    }
                    lo = bound.0;
                }
            }
        }
        // Full drain: what's left comes out in exact sorted order.
        while let Some(fired) = wheel.pop_earliest() {
            let expected = *model.iter().next().expect("model has an entry");
            prop_assert_eq!(fired, expected);
            model.remove(&expected);
        }
        prop_assert!(model.is_empty());
        prop_assert!(wheel.is_empty());
    }

    /// The active-list max-min solver is bit-identical to the full-scan
    /// reference on arbitrary instances.
    #[test]
    fn active_list_fluid_matches_reference(seed in any::<u64>(), nflows in 0usize..40) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        use spineless::fluid::max_min_rates_reference;
        let mut rng = SmallRng::seed_from_u64(seed);
        let links = 12usize;
        let cap: Vec<f64> = (0..links).map(|_| rng.gen_range(0.05..2.0)).collect();
        let flows: Vec<Vec<u32>> = (0..nflows)
            .map(|_| {
                let len = rng.gen_range(0..5usize);
                (0..len).map(|_| rng.gen_range(0..links as u32)).collect()
            })
            .collect();
        let fast = max_min_rates(links, &cap, &flows);
        let slow = max_min_rates_reference(links, &cap, &flows);
        prop_assert_eq!(fast.len(), slow.len());
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Raw max-min kernel: rates are invariant under flow permutation.
    #[test]
    fn max_min_is_symmetric(seed in any::<u64>(), nflows in 2usize..12) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let links = 6usize;
        let flows: Vec<Vec<u32>> = (0..nflows)
            .map(|_| {
                let len = rng.gen_range(1..=3);
                (0..len).map(|_| rng.gen_range(0..links as u32)).collect()
            })
            .collect();
        let cap = vec![1.0; links];
        let base = max_min_rates(links, &cap, &flows);
        // Reverse the flow order; rates must map accordingly.
        let rev: Vec<Vec<u32>> = flows.iter().rev().cloned().collect();
        let rrates = max_min_rates(links, &cap, &rev);
        for (i, r) in base.iter().enumerate() {
            let j = nflows - 1 - i;
            prop_assert!((r - rrates[j]).abs() < 1e-9);
        }
    }
}

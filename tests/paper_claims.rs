//! Cross-crate integration tests pinning the paper's claims end-to-end.
//!
//! Each test exercises the full pipeline (topology → routing → workload →
//! simulator/fluid solver) the way the figure harnesses do, at sizes that
//! keep the suite fast.

use spineless::core::fct::{generate_workload, run_cell, TmKind};
use spineless::core::throughput::run_fig5_panel;
use spineless::core::topos::{EvalTopos, Scale};
use spineless::core::udf::{default_sweep, udf_table};
use spineless::graph::bfs;
use spineless::prelude::*;
use spineless::routing::bgp;

/// §3.1: UDF of every leaf-spine is 2, measured on real constructions.
#[test]
fn claim_udf_is_two() {
    for row in udf_table(&default_sweep(), 5) {
        assert!((row.udf_measured - 2.0).abs() < 0.03, "{row:?}");
    }
}

/// §4 Theorem 1 on the actual evaluation topologies.
#[test]
fn claim_theorem1_on_eval_topologies() {
    let topos = EvalTopos::build(Scale::Small, 3);
    for topo in [&topos.leafspine, &topos.dring, &topos.rrg] {
        let phys = bfs::all_pairs_distances(&topo.graph);
        let vrf = VrfGraph::build(&topo.graph, 2);
        for s in 0..topo.num_switches() {
            for t in 0..topo.num_switches() {
                if s == t {
                    continue;
                }
                let l = phys[s as usize][t as usize] as u64;
                assert_eq!(
                    vrf.host_distance(s, t),
                    Some(l.max(2)),
                    "{} pair ({s},{t})",
                    topo.name
                );
            }
        }
    }
}

/// §4: distributed BGP over the VRF graph reproduces Shortest-Union(2)
/// forwarding state on the DRing.
#[test]
fn claim_bgp_realizes_shortest_union() {
    let topo = DRing::uniform(6, 3, 32).build();
    let fs = ForwardingState::build(&topo.graph, RoutingScheme::ShortestUnion(2));
    let out = bgp::converge(&fs.vrf);
    assert!(out.converged);
    for dst in 0..topo.num_switches() {
        let pr = &out.prefixes[dst as usize];
        let dag = &fs.dags[dst as usize];
        for v in 0..fs.vrf.graph.num_nodes() {
            if fs.vrf.router_of(v) == dst && v != fs.vrf.host_node(dst) {
                continue;
            }
            let mut a = pr.fib[v as usize].clone();
            let mut b = dag.next_hops(v).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "dst {dst} vnode {v}");
        }
    }
}

/// §6.1: flat topologies beat the leaf-spine's FCT tail on skewed traffic,
/// through the full packet simulator. The claim is statistical, so it is
/// pinned on the *mean* tail over a small seed family rather than one
/// workload draw — a single draw's winner is a property of the RNG
/// stream, not of the topologies. Load is 0.4: at lower loads the small
/// evaluation scale is underloaded and the tail is set by isolated incast
/// timeouts rather than the skew-driven congestion the claim is about.
#[test]
fn claim_flat_beats_leafspine_on_skewed_fct() {
    let topos = EvalTopos::build(Scale::Small, 7);
    let window = 1_500_000;
    let offered = topos.offered_bytes(0.4, window, 10.0);
    let mut ls_p99 = 0.0;
    let mut dr_p99 = 0.0;
    const SEEDS: u64 = 4;
    for seed in 9..9 + SEEDS {
        let ls_flows =
            generate_workload(TmKind::FbSkewed, &topos.leafspine, offered, window, seed);
        let dr_flows = generate_workload(TmKind::FbSkewed, &topos.dring, offered, window, seed);
        ls_p99 += run_cell(
            &topos.leafspine,
            RoutingScheme::Ecmp,
            &ls_flows,
            "FB skewed",
            SimConfig::default(),
            seed,
        )
        .p99_ms;
        dr_p99 += run_cell(
            &topos.dring,
            RoutingScheme::ShortestUnion(2),
            &dr_flows,
            "FB skewed",
            SimConfig::default(),
            seed,
        )
        .p99_ms;
    }
    let (ls_p99, dr_p99) = (ls_p99 / SEEDS as f64, dr_p99 / SEEDS as f64);
    assert!(
        dr_p99 < ls_p99,
        "DRing mean p99 {} should beat leaf-spine {}",
        dr_p99,
        ls_p99
    );
}

/// §6.1: ECMP on a flat network collapses for rack-to-rack between
/// adjacent racks; Shortest-Union(2) repairs it.
#[test]
fn claim_su2_fixes_rack_to_rack() {
    // Deterministic worst case (no Pareto variance): every server of rack
    // 0 sends fixed-size flows to servers of the *adjacent* rack. All of
    // it hashes onto the single shortest path under ECMP (2.4× overload of
    // one 10G link); Shortest-Union(2) spreads it over the 2-hop detours.
    let topos = EvalTopos::build(Scale::Small, 11);
    let dring = &topos.dring;
    // Racks 0 and 2 are adjacent in the small DRing (supernodes 0 and 1).
    assert!(dring.graph.has_edge(0, 2));
    let src_servers: Vec<u32> = dring.servers_on(0).collect();
    let dst_servers: Vec<u32> = dring.servers_on(2).collect();
    // Sustained 1.2× overload of one 10 Gbps link: 48 flows × 125 KB over
    // 4 ms = 12 Gbps. ECMP funnels all of it onto the single shortest
    // path; SU(2) spreads it over 5 disjoint paths (≈ 2.4 Gbps each).
    let window = 4_000_000u64;
    let mut flows = spineless::workload::FlowSet { flows: Vec::new(), window_ns: window };
    for (i, &s) in src_servers.iter().enumerate() {
        for k in 0..4u64 {
            let d = dst_servers[(i + k as usize) % dst_servers.len()];
            flows.flows.push(spineless::workload::FlowSpec {
                src: s,
                dst: d,
                bytes: 125_000,
                start_ns: (i as u64 * 77_773 + k * 919_393) % window,
            });
        }
    }
    let ecmp = run_cell(dring, RoutingScheme::Ecmp, &flows, "R2R", SimConfig::default(), 13);
    let su2 = run_cell(
        dring,
        RoutingScheme::ShortestUnion(2),
        &flows,
        "R2R",
        SimConfig::default(),
        13,
    );
    assert!(
        su2.p99_ms < ecmp.p99_ms / 1.5,
        "SU(2) p99 {} should clearly beat ECMP {} on adjacent-rack R2R",
        su2.p99_ms,
        ecmp.p99_ms
    );
    assert!(su2.mean_ms < ecmp.mean_ms, "mean too: {} vs {}", su2.mean_ms, ecmp.mean_ms);
}

/// §6.2: the skewed corner of the Fig. 5 heatmap favours the DRing, and
/// SU(2) lifts the weak ECMP lower-left corner.
#[test]
fn claim_fig5_shape() {
    let topos = EvalTopos::build(Scale::Small, 17);
    let values = [4u32, 12, 48];
    let ecmp = run_fig5_panel(&topos, RoutingScheme::Ecmp, &values, 20_000, 19);
    let su2 = run_fig5_panel(&topos, RoutingScheme::ShortestUnion(2), &values, 20_000, 19);
    let cell = |cells: &[spineless::core::throughput::HeatmapCell], c, s| {
        cells
            .iter()
            .find(|x| x.clients == c && x.servers == s)
            .map(|x| x.ratio)
            .expect("cell")
    };
    // Skewed cell: DRing wins under SU(2).
    assert!(cell(&su2, 12, 48) > 1.2, "skewed SU2 {}", cell(&su2, 12, 48));
    // Lower-left: SU(2) at least matches ECMP.
    assert!(cell(&su2, 4, 4) >= cell(&ecmp, 4, 4) - 1e-9);
}

/// §6.3's structural root: DRing bisection is flat in ring length; the
/// equal-hardware RRG's grows.
#[test]
fn claim_bisection_gap() {
    let sweep = spineless::core::scale::bisection_sweep(6..=10, 23);
    let first = sweep.first().unwrap();
    let last = sweep.last().unwrap();
    assert!(last.1 <= first.1 + 8, "DRing cut ~flat: {sweep:?}");
    assert!(last.2 > first.2, "RRG cut grows: {sweep:?}");
}

/// §5.1: the evaluation trio is hardware-consistent — RRG uses exactly the
/// leaf-spine's equipment; the DRing is within a few % of its servers.
#[test]
fn claim_equipment_parity() {
    for scale in [Scale::Small, Scale::Paper] {
        let topos = EvalTopos::build(scale, 29);
        assert_eq!(topos.rrg.equipment(), topos.leafspine.equipment());
        let deficit =
            1.0 - topos.dring.num_servers() as f64 / topos.leafspine.num_servers() as f64;
        assert!((0.0..0.05).contains(&deficit), "{scale:?}: {deficit}");
    }
}

//! Property-based tests for the topology builders: whatever the
//! parameters, construction invariants hold — port budgets, connectivity,
//! flatness, equipment accounting.

use proptest::prelude::*;
use spineless::prelude::*;
use spineless::topo::dragonfly::Dragonfly;
use spineless::topo::flat::flatten;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Leaf-spine: dimensions and port budget for arbitrary (x, y).
    #[test]
    fn leafspine_invariants(x in 1u32..24, y in 1u32..12) {
        let t = LeafSpine::new(x, y).build();
        prop_assert_eq!(t.num_servers(), x * (x + y));
        prop_assert_eq!(t.num_racks(), x + y);
        prop_assert_eq!(t.num_switches(), x + 2 * y);
        prop_assert!(t.graph.is_connected());
        for v in 0..t.num_switches() {
            prop_assert_eq!(t.ports_used(v), x + y, "switch {} uses full radix", v);
        }
        prop_assert!(!t.is_flat());
    }

    /// DRing: every ToR's ports are fully used (network + servers = radix),
    /// the network is flat and connected, and supergraph adjacency is the
    /// only source of links.
    #[test]
    fn dring_invariants(m in 3u32..14, n in 1u32..5) {
        // Radix big enough for the densest supernode neighbourhood.
        let radix = 6 * n + 2;
        let d = DRing::uniform(m, n, radix);
        prop_assume!(d.try_build().is_ok());
        let t = d.build();
        prop_assert!(t.is_flat());
        prop_assert!(t.graph.is_connected());
        prop_assert_eq!(t.num_racks(), m * n);
        for v in 0..t.num_switches() {
            prop_assert_eq!(t.ports_used(v), radix);
        }
        // Links only between adjacent supernodes.
        for e in 0..t.graph.num_edges() {
            let (a, b) = t.graph.edge(e);
            let (sa, sb) = (d.supernode_of(a), d.supernode_of(b));
            prop_assert_ne!(sa, sb, "no intra-supernode links");
            let diff = (sa as i64 - sb as i64).rem_euclid(m as i64).min(
                (sb as i64 - sa as i64).rem_euclid(m as i64),
            );
            prop_assert!(diff == 1 || diff == 2, "supernodes {} and {}", sa, sb);
        }
    }

    /// RRG from random equipment: exact equipment reproduction, simple
    /// graph, no port overflow.
    #[test]
    fn rrg_equipment_roundtrip(
        switches in 6u32..30,
        ports in 8u32..24,
        seed in any::<u64>(),
        servers_frac in 0.3f64..0.7,
    ) {
        let servers = ((switches * ports) as f64 * servers_frac) as u32;
        let eq = spineless::topo::Equipment { switches, ports_per_switch: ports, servers };
        // Degree feasibility: every switch needs fewer network ports than
        // it has possible neighbours.
        let max_net = ports - servers / switches;
        prop_assume!((max_net as usize) < switches as usize - 1);
        let rrg = Rrg::from_equipment(eq, seed);
        let t = match rrg.try_build() {
            Ok(t) => t,
            Err(_) => return Ok(()), // rare wedges with extreme params
        };
        prop_assert_eq!(t.equipment(), eq);
        for v in 0..t.num_switches() {
            prop_assert!(t.ports_used(v) <= ports);
            // Simple graph: no parallel edges.
            for &(nb, _) in t.graph.neighbors(v) {
                prop_assert_eq!(t.graph.multiplicity(v, nb), 1);
            }
        }
    }

    /// Flat rewiring preserves equipment and achieves flatness for any
    /// feasible leaf-spine.
    #[test]
    fn flatten_preserves_equipment(x in 4u32..20, y in 2u32..8, seed in any::<u64>()) {
        let t = LeafSpine::new(x, y).build();
        // Feasibility of the random graph: network degree < switches - 1.
        let eq = t.equipment();
        let net = eq.ports_per_switch - eq.servers / eq.switches;
        prop_assume!((net as usize) < eq.switches as usize - 1);
        if let Ok(f) = flatten(&t, seed) {
            prop_assert_eq!(f.equipment(), eq);
            prop_assert!(f.is_flat());
            prop_assert!(f.graph.is_connected());
        }
    }

    /// Xpander lifts: regular, flat, connected, no intra-group links.
    #[test]
    fn xpander_invariants(d in 3u32..9, lift in 1u32..6, seed in any::<u64>()) {
        let x = Xpander::new(d, lift, 2, d + 2, seed);
        let t = x.build();
        prop_assert_eq!(t.graph.regular_degree(), Some(d));
        prop_assert!(t.is_flat());
        prop_assert!(t.graph.is_connected());
    }

    /// Dragonfly: degree bounds, diameter <= 3, full global reachability.
    #[test]
    fn dragonfly_invariants(a in 2u32..6, h in 1u32..4, p in 1u32..4) {
        let df = Dragonfly::balanced(a, h, p, (a - 1) + h + p);
        let t = df.build();
        prop_assert!(t.graph.is_connected());
        prop_assert!(spineless::graph::bfs::diameter(&t.graph).unwrap() <= 3);
        for v in 0..t.num_switches() {
            prop_assert!(t.graph.degree(v) <= (a - 1) + h);
        }
    }

    /// Server-id mapping is a bijection rack-by-rack for every topology
    /// family.
    #[test]
    fn server_mapping_bijection(m in 3u32..10, n in 1u32..4) {
        let radix = 6 * n + 3;
        let d = DRing::uniform(m, n, radix);
        prop_assume!(d.try_build().is_ok());
        let t = d.build();
        let mut seen = vec![false; t.num_servers() as usize];
        for sw in 0..t.num_switches() {
            for s in t.servers_on(sw) {
                prop_assert_eq!(t.switch_of(s), sw);
                prop_assert!(!seen[s as usize]);
                seen[s as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }
}

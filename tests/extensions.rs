//! Integration tests for the §7 future-work extensions: adaptive
//! dual-plane routing, failure injection, and the extra topology families.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use spineless::graph::{bfs, spectral};
use spineless::prelude::*;
use spineless::routing::failures::{assess, FailurePlan};
use spineless::routing::{DualPlane, Forwarding};
use spineless::topo::dragonfly::Dragonfly;

/// Adaptive routing sits between the pure planes on expected path length
/// while matching the union plane's diversity exactly where it elects it.
#[test]
fn adaptive_interpolates_path_length() {
    let topo = DRing::uniform(8, 3, 32).build();
    let k = 3;
    let dual = DualPlane::by_path_count(&topo.graph, k, 4);
    let ecmp = ForwardingState::build(&topo.graph, RoutingScheme::Ecmp);
    let su = ForwardingState::build(&topo.graph, RoutingScheme::ShortestUnion(k));
    let racks = topo.racks();
    let mean = |f: &dyn Fn(u32, u32) -> f64| {
        let mut sum = 0.0;
        let mut n = 0u64;
        for &s in &racks {
            for &d in &racks {
                if s != d {
                    sum += f(s, d);
                    n += 1;
                }
            }
        }
        sum / n as f64
    };
    let h_ecmp = mean(&|s, d| ecmp.expected_route_hops(s, d).unwrap());
    let h_su = mean(&|s, d| su.expected_route_hops(s, d).unwrap());
    let h_dual = mean(&|s, d| {
        if dual.routes_over_su(s, d) {
            su.expected_route_hops(s, d).unwrap()
        } else {
            ecmp.expected_route_hops(s, d).unwrap()
        }
    });
    assert!(h_ecmp < h_dual && h_dual < h_su, "{h_ecmp} < {h_dual} < {h_su}");
}

/// Adaptive flows complete through the packet simulator and the chosen
/// plane is respected per pair (detours only where SU is elected).
#[test]
fn adaptive_sim_end_to_end() {
    let topo = DRing::uniform(6, 2, 24).build();
    let dual = DualPlane::by_distance(&topo.graph, 2, 1);
    let mut sim = Simulation::new(&topo, dual.clone(), SimConfig::default(), 3);
    let n = topo.num_servers();
    for i in 0..30 {
        let (s, d) = ((i * 7) % n, (i * 13 + 5) % n);
        if s != d {
            sim.add_flow(s, d, 60_000, (i as u64) * 2_000).unwrap();
        }
    }
    let r = sim.run();
    assert_eq!(r.unfinished(), 0);
    // Plane election sanity via route sampling.
    let mut rng = SmallRng::seed_from_u64(5);
    for s in 0..topo.num_switches() {
        for d in 0..topo.num_switches() {
            if s == d {
                continue;
            }
            let route = dual.sample_route_generic(s, d, &mut rng).unwrap();
            let dist = bfs::distances(&topo.graph, s)[d as usize] as usize;
            if !dual.routes_over_su(s, d) {
                assert_eq!(route.len(), dist, "ECMP plane is shortest-only");
            }
        }
    }
}

/// More failures, monotonically more stretch (on average over the same
/// seed family) and never less diversity. Averaged over a seed family
/// rather than pinned to one seed: whether a *particular* random plan
/// stretches any path is a property of the RNG stream, not of the code
/// under test.
#[test]
fn failure_impact_grows_with_cut_fraction() {
    let topo = DRing::uniform(8, 3, 32).build();
    const SEEDS: u64 = 8;
    let family_mean = |fraction: f64| -> f64 {
        let mut sum = 0.0;
        for s in 0..SEEDS {
            let mut rng = SmallRng::seed_from_u64(11 + s);
            let plan = FailurePlan::random_links(&topo, fraction, &mut rng);
            let impact = assess(&topo, RoutingScheme::ShortestUnion(2), &plan, 40).unwrap();
            // Cutting links can only lengthen surviving routes.
            assert!(
                impact.mean_cost_after >= impact.mean_cost_before,
                "cuts shortened paths: {impact:?}"
            );
            sum += impact.mean_cost_after;
        }
        sum / SEEDS as f64
    };
    // Same seed => same shuffle, so the 5% cut set is a prefix of the 25%
    // one and per-seed (hence family-mean) stretch is monotone.
    let light = family_mean(0.05);
    let heavy = family_mean(0.25);
    assert!(heavy >= light, "more cuts must not shrink stretch: {light} vs {heavy}");
    // At a 25% cut, at least one plan in the family must stretch some
    // route past the K=2 cost floor.
    assert!(heavy > 2.0, "25% cuts must stretch paths somewhere in the family: {heavy}");
}

/// A degraded topology still runs the full simulator pipeline.
#[test]
fn degraded_topology_simulates() {
    let topo = DRing::uniform(6, 3, 32).build();
    let mut rng = SmallRng::seed_from_u64(13);
    let plan = FailurePlan::random_links(&topo, 0.15, &mut rng);
    let degraded = plan.apply(&topo).unwrap();
    let fs = ForwardingState::build(&degraded.graph, RoutingScheme::ShortestUnion(2));
    let mut sim = Simulation::new(&degraded, fs, SimConfig::default(), 17);
    let n = degraded.num_servers();
    let mut added = 0;
    for i in 0..40 {
        let (s, d) = ((i * 3) % n, (i * 17 + 2) % n);
        if s != d && sim.add_flow(s, d, 30_000, (i as u64) * 1_500).is_ok() {
            added += 1;
        }
    }
    assert!(added > 30, "most pairs stay connected at 15% cuts");
    let r = sim.run();
    assert_eq!(r.unfinished(), 0);
}

/// The expander-family claim of §5.1: Xpander matches the RRG's spectral
/// gap and both crush the DRing's, with Dragonfly's low diameter alongside.
#[test]
fn topology_family_panorama() {
    let mut rng = SmallRng::seed_from_u64(19);
    // A longer ring exposes the DRing's poor expansion (gap shrinks with
    // ring length); the expanders keep theirs at matched size and degree.
    let dring = DRing::uniform(18, 2, 24).build(); // 36 racks, degree 8
    let rrg = Rrg::uniform(36, 8, 4, 12, 7).build();
    let xp = Xpander::new(8, 4, 4, 12, 7).build(); // 36 switches, degree 8
    let g_dring = spectral::spectral_gap(&dring.graph, 300, &mut rng);
    let g_rrg = spectral::spectral_gap(&rrg.graph, 300, &mut rng);
    let g_xp = spectral::spectral_gap(&xp.graph, 300, &mut rng);
    assert!(g_rrg > g_dring + 0.1, "rrg {g_rrg} vs dring {g_dring}");
    assert!(g_xp > g_dring + 0.1, "xpander {g_xp} vs dring {g_dring}");
    assert!((g_xp - g_rrg).abs() < 0.25, "expanders comparable: {g_xp} vs {g_rrg}");
    // Dragonfly: diameter <= 3 by construction, much denser local links.
    let df = Dragonfly::balanced(4, 2, 4, 16).build();
    assert!(bfs::diameter(&df.graph).unwrap() <= 3);
    assert!(bfs::diameter(&dring.graph).unwrap() >= 3);
}

/// Shortest-Union(2) works unmodified on Dragonfly, Slim Fly and Xpander —
/// the §7 expectation that flat low-diameter networks benefit from the
/// same oblivious scheme.
#[test]
fn su2_runs_on_other_flat_families() {
    for topo in [
        Dragonfly::balanced(3, 2, 4, 16).build(),
        spineless::topo::slimfly::SlimFly::new(5, 3, 11).build(),
        Xpander::new(6, 3, 4, 12, 3).build(),
    ] {
        let fs = ForwardingState::build(&topo.graph, RoutingScheme::ShortestUnion(2));
        let mut sim = Simulation::new(&topo, fs, SimConfig::default(), 23);
        let n = topo.num_servers();
        for i in 0..20 {
            let (s, d) = ((i * 5) % n, (i * 9 + 3) % n);
            if s != d {
                sim.add_flow(s, d, 40_000, (i as u64) * 2_000).unwrap();
            }
        }
        let r = sim.run();
        assert_eq!(r.unfinished(), 0, "{}", topo.name);
    }
}

//! Property-based tests driving the TCP state machines directly: an ideal
//! lossless loop, random segment reordering, and random loss patterns must
//! all converge to full delivery.

use proptest::prelude::*;
use spineless::sim::tcp::{TcpReceiver, TcpSender};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The receiver reassembles any permutation of the segment sequence.
    #[test]
    fn receiver_handles_any_reordering(
        nsegs in 1usize..40,
        seed in any::<u64>(),
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mss = 1000u32;
        let mut order: Vec<u64> = (0..nsegs as u64).collect();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        let mut r = TcpReceiver::new();
        let mut final_ack = 0;
        for seg in order {
            final_ack = r.on_data(seg * mss as u64, mss);
        }
        prop_assert_eq!(final_ack, nsegs as u64 * mss as u64);
    }

    /// A sender over an ideal (instant, lossless) network completes any
    /// flow size without retransmissions, delivering exactly the flow's
    /// bytes in order.
    #[test]
    fn sender_completes_over_ideal_network(bytes in 1u64..400_000) {
        let mss = 1460;
        let mut s = TcpSender::new(0, bytes, mss, 10, 1_000_000);
        let mut r = TcpReceiver::new();
        let mut now = 0u64;
        let mut out = s.start(now);
        let mut guard = 0;
        loop {
            guard += 1;
            prop_assert!(guard < 10_000, "no progress");
            if out.completed {
                break;
            }
            // Deliver every emitted segment, ack each immediately.
            let sends = std::mem::take(&mut out.send);
            prop_assert!(!sends.is_empty(), "stalled without completing");
            let mut next = out;
            for act in sends {
                prop_assert!(!act.is_rtx, "ideal network never retransmits");
                let ack = r.on_data(act.seq, act.size);
                now += 10;
                let o = s.on_ack(now, ack, now - 10, s.epoch());
                // Collect any new sends/timers from this ack.
                next.send.extend(o.send);
                next.completed |= o.completed;
                next.set_timer = o.set_timer.or(next.set_timer);
            }
            out = next;
        }
        prop_assert!(s.is_complete());
        prop_assert_eq!(s.acked(), bytes);
        prop_assert_eq!(r.cum_ack(), bytes);
        prop_assert_eq!(s.retransmits, 0);
        prop_assert_eq!(s.timeouts, 0);
    }

    /// With random segment loss, sender + receiver + RTO timer still
    /// deliver everything (go-the-distance liveness).
    #[test]
    fn sender_survives_random_loss(
        bytes in 1u64..120_000,
        loss_pct in 0u32..40,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mss = 1000;
        let mut s = TcpSender::new(0, bytes, mss, 4, 1_000);
        let mut r = TcpReceiver::new();
        let mut now = 0u64;
        let mut pending_timer: Option<(u64, u64)> = None;
        let mut out = s.start(now);
        let mut guard = 0;
        while !s.is_complete() {
            guard += 1;
            prop_assert!(guard < 200_000, "livelock at {} / {bytes}", s.acked());
            pending_timer = out.set_timer.or(pending_timer);
            let sends = std::mem::take(&mut out.send);
            let mut progressed = false;
            let mut merged = spineless::sim::tcp::TcpOutput::default();
            for act in sends {
                if rng.gen_range(0..100) < loss_pct {
                    continue; // dropped
                }
                progressed = true;
                let ack = r.on_data(act.seq, act.size);
                now += 1;
                let o = s.on_ack(now, ack, now - 1, s.epoch());
                merged.send.extend(o.send);
                merged.completed |= o.completed;
                merged.set_timer = o.set_timer.or(merged.set_timer);
            }
            if !progressed && merged.send.is_empty() && !s.is_complete() {
                // Nothing delivered: fire the RTO.
                let (deadline, gen) = pending_timer.take().expect("timer armed");
                now = now.max(deadline);
                let o = s.on_timer(now, gen);
                merged.send.extend(o.send);
                merged.set_timer = o.set_timer.or(merged.set_timer);
            }
            out = merged;
        }
        prop_assert_eq!(s.acked(), bytes);
    }
}

//! Property-based tests for the graph substrate and the VRF construction,
//! over randomly generated connected graphs.

use proptest::prelude::*;
use spineless::graph::{bfs, cuts, flow, paths, Graph, GraphBuilder};
use spineless::routing::VrfGraph;

/// Strategy: a connected graph on 4..=14 nodes — a random spanning tree
/// plus random extra edges (no parallels for simplicity here).
fn connected_graph() -> impl Strategy<Value = Graph> {
    (4u32..=14, any::<u64>()).prop_map(|(n, seed)| {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        // Random spanning tree: attach node i to a random earlier node.
        for i in 1..n {
            b.add_edge(i, rng.gen_range(0..i));
        }
        // Extra edges with probability 0.3, skipping existing pairs lazily
        // (duplicates are fine for these properties, but keep it simple).
        for a in 0..n {
            for c in (a + 1)..n {
                if rng.gen_bool(0.3) {
                    b.add_edge(a, c);
                }
            }
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// BFS distances obey the triangle inequality through any edge.
    #[test]
    fn bfs_distance_is_1_lipschitz_on_edges(g in connected_graph()) {
        let d = bfs::distances(&g, 0);
        for &(a, b) in g.edges() {
            let da = d[a as usize] as i64;
            let db = d[b as usize] as i64;
            prop_assert!((da - db).abs() <= 1, "edge ({a},{b}): {da} vs {db}");
        }
    }

    /// Every shortest-path-DAG next hop decreases distance by exactly 1,
    /// and every non-destination node has at least one.
    #[test]
    fn sp_dag_is_well_formed(g in connected_graph()) {
        let dst = g.num_nodes() - 1;
        let dag = bfs::SpDag::towards(&g, dst);
        for v in 0..g.num_nodes() {
            if v == dst {
                prop_assert!(dag.next_hops[v as usize].is_empty());
                continue;
            }
            prop_assert!(!dag.next_hops[v as usize].is_empty(), "node {v}");
            for &(w, e) in &dag.next_hops[v as usize] {
                prop_assert_eq!(dag.dist[w as usize] + 1, dag.dist[v as usize]);
                let (x, y) = g.edge(e);
                prop_assert!((x, y) == (v, w) || (x, y) == (w, v));
            }
        }
    }

    /// Shortest-path count >= 1 for all pairs of a connected graph, and
    /// equals the number of enumerated shortest paths when under the cap.
    #[test]
    fn path_counting_matches_enumeration(g in connected_graph()) {
        let dst = 0;
        let dag = bfs::SpDag::towards(&g, dst);
        for src in 1..g.num_nodes() {
            let count = dag.count_paths(src);
            prop_assert!(count >= 1);
            if count <= 200 {
                let listed = paths::all_shortest_paths(&g, src, dst, 500);
                prop_assert_eq!(listed.len() as u64, count, "pair ({}, 0)", src);
            }
        }
    }

    /// Edge-disjoint path count is bounded by both endpoint degrees and is
    /// at least 1 on a connected graph; node-disjoint <= edge-disjoint.
    #[test]
    fn mengers_bounds(g in connected_graph()) {
        let (s, t) = (0, g.num_nodes() - 1);
        let ed = flow::edge_disjoint_paths(&g, s, t);
        let nd = flow::node_disjoint_paths(&g, s, t);
        prop_assert!(ed >= 1);
        prop_assert!(ed <= g.degree(s).min(g.degree(t)));
        prop_assert!(nd <= ed);
    }

    /// The bisection estimator returns a balanced partition whose cut it
    /// reports faithfully.
    #[test]
    fn bisection_estimate_is_consistent(g in connected_graph()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let (cut, side) = cuts::estimate_bisection(&g, 4, &mut rng);
        prop_assert_eq!(cut, cuts::cut_size(&g, &side));
        let a = side.iter().filter(|&&s| s).count();
        let n = g.num_nodes() as usize;
        prop_assert!(a == n / 2 || a == n - n / 2);
    }

    /// Theorem 1 on arbitrary connected graphs: VRF host distance is
    /// max(L, K) for K in 1..=3.
    #[test]
    fn theorem1_holds_on_random_graphs(g in connected_graph(), k in 1u32..=3) {
        let vrf = VrfGraph::build(&g, k);
        let n = g.num_nodes();
        for s in 0..n {
            let d = bfs::distances(&g, s);
            for t in 0..n {
                if s == t {
                    continue;
                }
                let l = d[t as usize] as u64;
                prop_assert_eq!(vrf.host_distance(s, t), Some(l.max(k as u64)));
            }
        }
    }

    /// Bucket-queue shortest paths equal heap Dijkstra, and CSR DAGs equal
    /// flattened nested DAGs, on VRF expansions of random graphs — the
    /// small-integer-cost regime (arcs cost 1..=K) Dial's algorithm
    /// targets.
    #[test]
    fn bucket_queue_and_csr_match_references(g in connected_graph(), k in 1u32..=3) {
        use spineless::graph::{CsrSpDag, DialScratch};
        let vrf = VrfGraph::build(&g, k);
        let dg = &vrf.graph;
        let mut scratch = DialScratch::for_graph(dg);
        for dst in 0..dg.num_nodes() {
            prop_assert_eq!(dg.bucket_dijkstra_to(dst, &mut scratch), dg.dijkstra_to(dst));
        }
        prop_assert_eq!(dg.bucket_dijkstra_from(0, &mut scratch), dg.dijkstra_from(0));
        for r in 0..g.num_nodes() {
            let nested = vrf.dag_towards(r);
            let csr = vrf.csr_dag_towards_with(r, &mut scratch);
            prop_assert_eq!(csr, CsrSpDag::from_nested(&nested));
        }
    }

    /// The flat all-pairs distance matrix matches per-source BFS.
    #[test]
    fn distance_matrix_rows_match_bfs(g in connected_graph()) {
        let m = bfs::all_pairs_distances(&g);
        for v in 0..g.num_nodes() {
            let d = bfs::distances(&g, v);
            prop_assert_eq!(m.row(v), &d[..]);
        }
    }

    /// Shortest-Union(2) router paths are valid simple paths whose length
    /// is either the pair distance or <= 2, and include every shortest
    /// path (when enumerable).
    #[test]
    fn su2_path_set_shape(g in connected_graph()) {
        let vrf = VrfGraph::build(&g, 2);
        let d = bfs::all_pairs_distances(&g);
        for s in 0..g.num_nodes() {
            for t in 0..g.num_nodes() {
                if s == t {
                    continue;
                }
                let l = d[s as usize][t as usize];
                let ps = vrf.router_paths(s, t, 500);
                prop_assert!(!ps.is_empty());
                for p in &ps {
                    prop_assert!(paths::is_simple_path(&g, p, s, t), "{p:?}");
                    let hops = (p.len() - 1) as u32;
                    prop_assert!(hops == l || hops <= 2, "hops {hops}, dist {l}");
                }
            }
        }
    }
}

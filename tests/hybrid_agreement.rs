//! Hybrid fluid+packet co-simulation: correctness pins and statistical
//! agreement against the pure-packet reference.
//!
//! Three layers, strongest to weakest guarantee:
//!
//! 1. **Bit-identity** — `HybridMode::PacketOnly` must equal the plain
//!    [`Simulation`] report exactly, on arbitrary workloads (proptest).
//! 2. **Generator properties** — the open-loop Poisson generator is a pure
//!    function of its seed and always emits well-formed, time-sorted flows
//!    (proptest).
//! 3. **Statistical agreement** — on small fabrics where pure-packet is
//!    cheap, hybrid-mode mice FCT means and per-link byte totals agree
//!    with pure-packet within documented tolerances, averaged over a seed
//!    family (DESIGN.md §13 records the bands and why they are what they
//!    are: elephants skip slow-start and never retransmit, so hybrid runs
//!    slightly *fast* on elephants and slightly perturbs mice).

use proptest::prelude::*;
use spineless::prelude::*;
use std::sync::Arc;

type RandomFlows = Vec<(u32, u32, u64, u64)>;

fn topo_and_flows() -> impl Strategy<Value = (Topology, RandomFlows)> {
    (any::<u64>(), 1usize..24).prop_map(|(seed, nflows)| {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let topo = LeafSpine::new(6, 2).build();
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = topo.num_servers();
        let flows: RandomFlows = (0..nflows)
            .map(|_| {
                let src = rng.gen_range(0..n);
                let dst = loop {
                    let d = rng.gen_range(0..n);
                    if d != src {
                        break d;
                    }
                };
                // Straddle the elephant threshold so both planes see work.
                (src, dst, rng.gen_range(1..400_000u64), rng.gen_range(0..500_000u64))
            })
            .collect();
        (topo, flows)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `PacketOnly` is the plain engine, bit for bit: identical
    /// `SimReport` and identical merged flow records, on arbitrary
    /// workloads.
    #[test]
    fn packet_only_hybrid_is_bit_identical((topo, flows) in topo_and_flows()) {
        let fs = Arc::new(ForwardingState::build(&topo.graph, RoutingScheme::Ecmp));
        let cfg = SimConfig::default();
        let mut plain = Simulation::new(&topo, fs.clone(), cfg, 11);
        let hcfg = HybridConfig { mode: HybridMode::PacketOnly, ..Default::default() };
        let mut hybrid = HybridSimulation::new(&topo, fs, cfg, hcfg, 11);
        for &(s, d, b, t) in &flows {
            plain.add_flow(s, d, b, t).expect("valid flow");
            hybrid.add_flow(s, d, b, t).expect("valid flow");
        }
        let rp = plain.run();
        let rh = hybrid.run();
        prop_assert_eq!(&rp, &rh.packet);
        prop_assert_eq!(&rh.flows, &rp.flows);
        prop_assert_eq!(rh.resolves, 0);
        prop_assert_eq!(rh.elephant_count, 0);
    }

    /// Hybrid mode on arbitrary workloads: everything finishes on an
    /// intact fabric, records keep global-id order, and elephant byte
    /// accounting is exact.
    #[test]
    fn hybrid_completes_arbitrary_workloads((topo, flows) in topo_and_flows()) {
        let fs = Arc::new(ForwardingState::build(&topo.graph, RoutingScheme::Ecmp));
        let mut h = HybridSimulation::new(
            &topo, fs, SimConfig::default(), HybridConfig::default(), 11,
        );
        let mut ele_bytes = 0u64;
        for &(s, d, b, t) in &flows {
            h.add_flow(s, d, b, t).expect("valid flow");
            if b >= 100_000 {
                ele_bytes += b;
            }
        }
        let r = h.run();
        prop_assert_eq!(r.unfinished(), 0);
        prop_assert_eq!(r.elephant_bytes_delivered, ele_bytes);
        for (i, f) in r.flows.iter().enumerate() {
            prop_assert_eq!(f.id as usize, i);
            let fct = f.fct_ns.expect("finished") as f64;
            // Physical floor: serialize over one link at full rate. (The
            // fluid plane caps elephants below full rate, so this holds
            // a fortiori.)
            prop_assert!(fct >= f.bytes as f64 / 1.25);
        }
    }

    /// The open-loop generator is a pure function of its seed and always
    /// emits well-formed streams: time-sorted, inside the window, no
    /// self-flows, sizes within the Pareto support.
    #[test]
    fn openloop_generator_is_deterministic_and_well_formed(
        seed in any::<u64>(),
        rate_milli in 1u64..2_000,   // 0.001..2.0 bytes/ns
        window in 100_000u64..4_000_000,
    ) {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let topo = LeafSpine::new(4, 2).build();
        let tm = TrafficMatrix::uniform(&topo);
        let sizes = ParetoFlowSizes::paper();
        let rate = rate_milli as f64 / 1000.0;
        let gen = || {
            let mut rng = SmallRng::seed_from_u64(seed);
            poisson_from_tm(&tm, &topo, rate, &sizes, window, &mut rng)
        };
        let a = gen();
        let b = gen();
        prop_assert_eq!(&a.flows, &b.flows);
        prop_assert!(a.flows.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        for f in &a.flows {
            prop_assert!(f.start_ns < window);
            prop_assert!(f.src != f.dst);
            prop_assert!(f.bytes >= 1);
            prop_assert!(f.bytes <= 30_000_000);
        }
    }
}

/// Statistical agreement, seed-family means (DESIGN.md §13). Small fabric
/// (leaf-spine(4,2), 24 servers) at moderate load so the pure-packet
/// reference stays cheap; 4 seeds; open-loop Poisson arrivals with paper
/// Pareto sizes.
///
/// Tolerances (documented, not aspirational):
/// * mice mean FCT: hybrid within **±25%** of pure-packet — elephants are
///   replaced by smooth rate processes, so mice see steady residual
///   capacity instead of bursty TCP competition;
/// * total switch-link bytes: hybrid (packet + fluid planes combined)
///   within **±10%** of pure-packet — same offered bytes, different
///   retransmit behaviour (the fluid plane never retransmits);
/// * overall completion: hybrid finishes at least as many flows.
#[test]
fn hybrid_statistically_agrees_with_pure_packet() {
    let topo = LeafSpine::new(4, 2).build();
    let tm = TrafficMatrix::uniform(&topo);
    let sizes = ParetoFlowSizes::paper();
    let fs = Arc::new(ForwardingState::build(&topo.graph, RoutingScheme::Ecmp));
    let threshold = 100_000u64;
    let window = 2_000_000u64;
    let rate = 0.5; // bytes/ns offered across the fabric
    let mut mice_ratio_sum = 0.0f64;
    let mut bytes_ratio_sum = 0.0f64;
    let seeds = [3u64, 5, 7, 11];
    for &seed in &seeds {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(seed);
        let flowset = poisson_from_tm(&tm, &topo, rate, &sizes, window, &mut rng);
        let cfg = SimConfig { max_time_ns: 50_000_000, ..Default::default() };

        let mut pure = Simulation::new(&topo, fs.clone(), cfg, seed);
        for f in &flowset.flows {
            pure.add_flow(f.src, f.dst, f.bytes, f.start_ns).unwrap();
        }
        let rp = pure.run();
        let pure_bytes: u64 = pure.switch_link_tx_bytes().iter().sum();

        let hcfg = HybridConfig {
            elephant_threshold_bytes: threshold,
            ..Default::default()
        };
        let mut hybrid = HybridSimulation::new(&topo, fs.clone(), cfg, hcfg, seed);
        for f in &flowset.flows {
            hybrid.add_flow(f.src, f.dst, f.bytes, f.start_ns).unwrap();
        }
        let rh = hybrid.run();
        let hybrid_bytes: f64 = hybrid.switch_link_total_bytes().iter().sum();

        assert!(
            rh.unfinished() <= rp.unfinished(),
            "hybrid left {} unfinished vs pure {}",
            rh.unfinished(),
            rp.unfinished()
        );

        // Mice mean FCT, matched by flow identity (same generator order).
        let mice_mean = |flows: &[spineless::sim::FlowRecord]| {
            let (mut sum, mut n) = (0.0f64, 0u64);
            for (f, spec) in flows.iter().zip(&flowset.flows) {
                assert_eq!(f.bytes, spec.bytes);
                if spec.bytes < threshold {
                    if let Some(fct) = f.fct_ns {
                        sum += fct as f64;
                        n += 1;
                    }
                }
            }
            sum / n as f64
        };
        let mp = mice_mean(&rp.flows);
        let mh = mice_mean(&rh.flows);
        mice_ratio_sum += mh / mp;
        bytes_ratio_sum += hybrid_bytes / pure_bytes as f64;
    }
    let mice_ratio = mice_ratio_sum / seeds.len() as f64;
    let bytes_ratio = bytes_ratio_sum / seeds.len() as f64;
    assert!(
        (mice_ratio - 1.0).abs() < 0.25,
        "mice mean-FCT ratio hybrid/pure = {mice_ratio:.3}, outside ±25%"
    );
    assert!(
        (bytes_ratio - 1.0).abs() < 0.10,
        "switch-link byte ratio hybrid/pure = {bytes_ratio:.3}, outside ±10%"
    );
}

/// The elephant FCTs themselves: the fluid plane must not be wildly
/// optimistic. On a lone bulk flow the hybrid FCT equals the max-min
/// serialization time at the elephant share; pure-packet TCP adds
/// slow-start and ACK overheads on top, so hybrid is faster — but by a
/// bounded factor on a quiet fabric.
#[test]
fn lone_elephant_fct_is_bounded_by_fluid_serialization() {
    let topo = LeafSpine::new(4, 2).build();
    let fs = Arc::new(ForwardingState::build(&topo.graph, RoutingScheme::Ecmp));
    let bytes = 5_000_000u64;
    let mut h = HybridSimulation::new(
        &topo,
        fs.clone(),
        SimConfig::default(),
        HybridConfig::default(),
        3,
    );
    let f = h.add_flow(0, 20, bytes, 0).unwrap();
    let fct_h = h.run().flows[f as usize].fct_ns.unwrap() as f64;
    // Fluid floor: 0.9 link share at 1.25 B/ns.
    let floor = bytes as f64 / (0.9 * 1.25);
    assert!(fct_h >= floor * 0.999, "hybrid fct {fct_h} beats the fluid floor {floor}");
    let mut p = Simulation::new(&topo, fs, SimConfig::default(), 3);
    let fp = p.add_flow(0, 20, bytes, 0).unwrap();
    let fct_p = p.run().flows[fp as usize].fct_ns.unwrap() as f64;
    // Hybrid may be faster (no slow-start) but within 2x on a quiet net.
    assert!(fct_h <= fct_p * 1.05, "hybrid fct {fct_h} much slower than packet {fct_p}");
    assert!(fct_p <= fct_h * 2.0, "packet fct {fct_p} more than 2x hybrid {fct_h}");
}

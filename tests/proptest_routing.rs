//! Property-based tests for the fast routing-state pipeline: the parallel
//! bucket-queue/CSR build against the serial heap-Dijkstra reference,
//! incremental failure recompute against the full rebuild, and incremental
//! *expansion* recompute against a cold build of the grown network, on
//! random DRing / RRG / leaf-spine / Jellyfish instances.

use proptest::prelude::*;
use spineless::prelude::*;
use spineless::routing::expand::{edge_map_by_endpoints, incremental_expand};
use spineless::routing::failures::{incremental_rebuild, FailurePlan};

/// Strategy: one of the paper's three topology families at a small random
/// size, plus a routing scheme (ECMP on the leaf-spine, Shortest-Union(K)
/// on the flat topologies, as the evaluation pairs them).
fn topo_and_scheme() -> impl Strategy<Value = (Topology, RoutingScheme)> {
    (0u8..3, any::<u64>(), 2u32..=3).prop_map(|(kind, seed, k)| {
        let topo = match kind {
            0 => DRing::uniform(5 + (seed % 3) as u32, 2 + (seed % 2) as u32, 24).build(),
            1 => Rrg::uniform(12 + (seed % 8) as u32, 5, 4, 10, seed).build(),
            _ => LeafSpine::new(4 + (seed % 4) as u32, 3).build(),
        };
        let scheme = if kind == 2 {
            RoutingScheme::Ecmp
        } else {
            RoutingScheme::ShortestUnion(k)
        };
        (topo, scheme)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The parallel bucket-queue CSR build is bit-identical to the serial
    /// heap-Dijkstra reference on every topology family.
    #[test]
    fn fast_build_matches_reference((topo, scheme) in topo_and_scheme()) {
        let fast = ForwardingState::build(&topo.graph, scheme);
        let reference = ForwardingState::build_reference(&topo.graph, scheme);
        prop_assert_eq!(fast, reference);
    }

    /// Incremental failure recompute is bit-identical to a full rebuild of
    /// the degraded topology, for random link-cut/switch-kill plans.
    #[test]
    fn incremental_recompute_matches_full_rebuild(
        (topo, scheme) in topo_and_scheme(),
        seed in any::<u64>(),
        fraction in 0.0f64..0.25,
        kill_switch in any::<bool>(),
    ) {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut plan = FailurePlan::random_links(&topo, fraction, &mut rng);
        if kill_switch {
            plan.failed_switches =
                FailurePlan::random_switches(&topo, 1, &mut rng).failed_switches;
        }
        let baseline = ForwardingState::build(&topo.graph, scheme);
        let (degraded, inc) = incremental_rebuild(&baseline, &topo, &plan).unwrap();
        let full = ForwardingState::build(&degraded.graph, scheme);
        prop_assert_eq!(inc, full);
    }

    /// Incremental expansion recompute is bit-identical to a cold build of
    /// the grown network, for random Jellyfish growth steps (random cables
    /// replaced by the new switches' cables) chained across several sizes.
    #[test]
    fn incremental_expand_matches_full_build(
        switches in 8u32..16,
        degree_half in 1u32..4,
        seed in any::<u64>(),
        k in 1u32..=3,
        steps in 1usize..4,
    ) {
        let degree = 2 * degree_half;
        prop_assume!(switches > degree);
        let scheme = if k == 1 { RoutingScheme::Ecmp } else { RoutingScheme::ShortestUnion(k) };
        let Ok(mut jf) = Jellyfish::new(switches, degree, 2, degree + 2, seed) else {
            // Rare RRG construction failure at awkward (n, d): skip.
            return Ok(());
        };
        let mut state = ForwardingState::build(&jf.topology().unwrap().graph, scheme);
        for _ in 0..steps {
            let map = jf.expand(1 + (seed % 2) as u32).unwrap();
            let grown = jf.topology().unwrap();
            let inc = incremental_expand(&state, &grown.graph, &map);
            let full = ForwardingState::build(&grown.graph, scheme);
            prop_assert_eq!(&inc, &full);
            state = inc;
        }
    }

    /// The endpoint matcher recovers an exact survivor map for DRing
    /// supernode growth, and expansion through it matches the cold build.
    #[test]
    fn dring_growth_expand_matches_full_build(
        supernodes in 5u32..8,
        tors in 1u32..3,
        added in 1u32..3,
        k in 2u32..=3,
    ) {
        let scheme = RoutingScheme::ShortestUnion(k);
        let small = DRing::uniform(supernodes, tors, 24).build();
        let mut grown_builder = DRing::uniform(supernodes, tors, 24);
        for _ in 0..added {
            grown_builder = grown_builder.add_supernode(tors);
        }
        let grown = grown_builder.build();
        let map = edge_map_by_endpoints(&small.graph, &grown.graph)
            .expect("supernode appends keep survivor order");
        let baseline = ForwardingState::build(&small.graph, scheme);
        let inc = incremental_expand(&baseline, &grown.graph, &map);
        let full = ForwardingState::build(&grown.graph, scheme);
        prop_assert_eq!(inc, full);
    }
}

//! Property-based tests for the fast routing-state pipeline: the parallel
//! bucket-queue/CSR build against the serial heap-Dijkstra reference, and
//! incremental failure recompute against the full rebuild, on random
//! DRing / RRG / leaf-spine instances.

use proptest::prelude::*;
use spineless::prelude::*;
use spineless::routing::failures::{incremental_rebuild, FailurePlan};

/// Strategy: one of the paper's three topology families at a small random
/// size, plus a routing scheme (ECMP on the leaf-spine, Shortest-Union(K)
/// on the flat topologies, as the evaluation pairs them).
fn topo_and_scheme() -> impl Strategy<Value = (Topology, RoutingScheme)> {
    (0u8..3, any::<u64>(), 2u32..=3).prop_map(|(kind, seed, k)| {
        let topo = match kind {
            0 => DRing::uniform(5 + (seed % 3) as u32, 2 + (seed % 2) as u32, 24).build(),
            1 => Rrg::uniform(12 + (seed % 8) as u32, 5, 4, 10, seed).build(),
            _ => LeafSpine::new(4 + (seed % 4) as u32, 3).build(),
        };
        let scheme = if kind == 2 {
            RoutingScheme::Ecmp
        } else {
            RoutingScheme::ShortestUnion(k)
        };
        (topo, scheme)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The parallel bucket-queue CSR build is bit-identical to the serial
    /// heap-Dijkstra reference on every topology family.
    #[test]
    fn fast_build_matches_reference((topo, scheme) in topo_and_scheme()) {
        let fast = ForwardingState::build(&topo.graph, scheme);
        let reference = ForwardingState::build_reference(&topo.graph, scheme);
        prop_assert_eq!(fast, reference);
    }

    /// Incremental failure recompute is bit-identical to a full rebuild of
    /// the degraded topology, for random link-cut/switch-kill plans.
    #[test]
    fn incremental_recompute_matches_full_rebuild(
        (topo, scheme) in topo_and_scheme(),
        seed in any::<u64>(),
        fraction in 0.0f64..0.25,
        kill_switch in any::<bool>(),
    ) {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut plan = FailurePlan::random_links(&topo, fraction, &mut rng);
        if kill_switch {
            plan.failed_switches =
                FailurePlan::random_switches(&topo, 1, &mut rng).failed_switches;
        }
        let baseline = ForwardingState::build(&topo.graph, scheme);
        let (degraded, inc) = incremental_rebuild(&baseline, &topo, &plan).unwrap();
        let full = ForwardingState::build(&degraded.graph, scheme);
        prop_assert_eq!(inc, full);
    }
}

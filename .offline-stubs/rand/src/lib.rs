//! Behavioral offline stand-in for `rand` 0.8 (the API subset this
//! workspace uses).
//!
//! Unlike a typecheck-only stub, this implements a real PRNG (splitmix64
//! core) and genuine uniform sampling, so the test suite can be *executed*
//! on machines with no crates registry. Streams differ from the real
//! `rand` crate — any seeded expectation is stub-internal — but every
//! repo invariant is stream-agnostic: the equivalence suites (fast vs
//! reference datapath, calendar vs heap scheduler, parallel vs serial
//! builds) compare two runs over the *same* stream.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub trait Rng: RngCore {
    fn gen<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self.next_u64())
    }

    fn gen_range<T, R2: SampleRange<T>>(&mut self, range: R2) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A uniform draw from `[0, 1)` with 53 random mantissa bits.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

pub trait FromRng {
    fn from_rng(x: u64) -> Self;
}

macro_rules! impl_from_rng {
    ($($t:ty),*) => {
        $(impl FromRng for $t {
            fn from_rng(x: u64) -> Self { x as $t }
        })*
    };
}
impl_from_rng!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for bool {
    fn from_rng(x: u64) -> Self {
        x & 1 == 1
    }
}
impl FromRng for f64 {
    fn from_rng(x: u64) -> Self {
        unit_f64(x)
    }
}
impl FromRng for f32 {
    fn from_rng(x: u64) -> Self {
        unit_f64(x) as f32
    }
}

pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Per-type uniform sampling over `[lo, hi)` / `[lo, hi]` — the single
/// generic `SampleRange` impl below keeps integer-literal inference
/// working the way the real crate's `SampleUniform` does.
pub trait SampleBound: Sized {
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

impl<T: SampleBound> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleBound> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(lo, hi, true, rng)
    }
}

macro_rules! impl_sample_bound_int {
    ($($t:ty),*) => {
        $(impl SampleBound for $t {
            fn sample_range<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let (lo, hi) = (lo as i128, hi as i128);
                let span = (hi - lo) as u128 + inclusive as u128;
                assert!(span > 0, "cannot sample empty range");
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        })*
    };
}
impl_sample_bound_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleBound for f64 {
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, _incl: bool, rng: &mut R) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleBound for f32 {
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, _incl: bool, rng: &mut R) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + (unit_f64(rng.next_u64()) as f32) * (hi - lo)
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    /// Stand-in SmallRng: splitmix64 — a real, well-mixed 64-bit PRNG
    /// (the same generator `rand` itself uses to seed from a `u64`).
    #[derive(Debug, Clone)]
    pub struct SmallRng(u64);

    impl crate::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng(state)
        }
    }
}

pub mod seq {
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: crate::Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        /// Fisher–Yates, uniform over permutations.
        fn shuffle<R: crate::Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

//! Typecheck-only stub of `rand` 0.8. Not functional.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub trait Rng: RngCore {
    fn gen<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self.next_u64())
    }

    fn gen_range<T, R2: SampleRange<T>>(&mut self, range: R2) -> T
    where
        Self: Sized,
    {
        range.low()
    }

    fn gen_bool(&mut self, _p: f64) -> bool
    where
        Self: Sized,
    {
        false
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub trait FromRng {
    fn from_rng(x: u64) -> Self;
}

macro_rules! impl_from_rng {
    ($($t:ty),*) => {
        $(impl FromRng for $t {
            fn from_rng(x: u64) -> Self { x as $t }
        })*
    };
}
impl_from_rng!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for bool {
    fn from_rng(x: u64) -> Self {
        x & 1 == 1
    }
}
impl FromRng for f64 {
    fn from_rng(x: u64) -> Self {
        x as f64
    }
}
impl FromRng for f32 {
    fn from_rng(x: u64) -> Self {
        x as f32
    }
}

pub trait SampleRange<T> {
    fn low(self) -> T;
}

impl<T> SampleRange<T> for std::ops::Range<T> {
    fn low(self) -> T {
        self.start
    }
}
impl<T> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn low(self) -> T {
        self.into_inner().0
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    /// Stub SmallRng: a trivial LCG so the type exists and is cheap.
    #[derive(Debug, Clone)]
    pub struct SmallRng(u64);

    impl crate::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            SmallRng(state)
        }
    }
}

pub mod seq {
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: crate::Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn shuffle<R: crate::Rng + ?Sized>(&mut self, _rng: &mut R) {}
        fn choose<R: crate::Rng + ?Sized>(&self, _rng: &mut R) -> Option<&T> {
            self.first()
        }
    }
}

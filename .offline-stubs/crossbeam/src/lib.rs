//! Typecheck-only stub of `crossbeam` scoped threads. `scope` has the real
//! signature but never runs the spawned closures.

pub mod thread {
    use std::marker::PhantomData;

    pub struct Scope<'env> {
        _marker: PhantomData<&'env ()>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        _marker: PhantomData<(&'scope (), T)>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            unimplemented!("stub crossbeam: join never runs")
        }
    }

    impl<'env> Scope<'env> {
        pub fn spawn<'scope, F, T>(&'scope self, _f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'env>) -> T + Send + 'env,
            T: Send + 'env,
        {
            ScopedJoinHandle { _marker: PhantomData }
        }
    }

    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: FnOnce(&Scope<'env>) -> R,
    {
        Ok(f(&Scope { _marker: PhantomData }))
    }
}

//! Behavioral offline stand-in for `crossbeam` scoped threads.
//!
//! `spawn` runs the closure *inline* (sequentially, on the calling
//! thread) and `join` hands back its result. That loses parallelism but
//! preserves semantics for this workspace's usage pattern: workers pull
//! indices from an atomic dispenser, so the first spawned closure simply
//! drains the whole queue and the rest find it empty — results are
//! identical to any true interleaving.

pub mod thread {
    use std::marker::PhantomData;

    pub struct Scope<'env> {
        _marker: PhantomData<&'env ()>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        result: T,
        _marker: PhantomData<&'scope ()>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            Ok(self.result)
        }
    }

    impl<'env> Scope<'env> {
        pub fn spawn<'scope, F, T>(&'scope self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'env>) -> T + Send + 'env,
            T: Send + 'env,
        {
            ScopedJoinHandle { result: f(self), _marker: PhantomData }
        }
    }

    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: FnOnce(&Scope<'env>) -> R,
    {
        Ok(f(&Scope { _marker: PhantomData }))
    }
}

//! Typecheck-only stub of `serde` 1.x. The derive macros expand to nothing,
//! so `Serialize`/`Deserialize` bounds are never actually satisfied — fine
//! for code that only *derives* them.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}

pub trait Serializer {}

pub trait Deserializer<'de> {}

//! Typecheck-only stub of `parking_lot` backed by `std::sync`.

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

//! Typecheck-only stub of `bytes` (unused API surface in this workspace).

pub struct Bytes;
pub struct BytesMut;

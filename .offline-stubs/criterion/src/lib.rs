//! Typecheck-only stub of `criterion` 0.5's API surface used here.

use std::fmt::Display;
use std::marker::PhantomData;

pub struct Criterion;

impl Criterion {
    pub fn benchmark_group<N: Display>(&mut self, _name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _marker: PhantomData }
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion
    }
}

pub struct BenchmarkGroup<'a> {
    _marker: PhantomData<&'a ()>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, _id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if false {
            f(&mut Bencher { _p: () });
        }
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, _id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        if false {
            f(&mut Bencher { _p: () }, input);
        }
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    _p: (),
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if false {
            let _ = routine();
        }
    }
}

pub struct BenchmarkId;

impl BenchmarkId {
    pub fn new<S: Display, P: Display>(_function_name: S, _parameter: P) -> BenchmarkId {
        BenchmarkId
    }
}

// Real criterion takes `impl IntoBenchmarkId` (satisfied by BenchmarkId
// and by any Display type); the stub unifies both under Display.
impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BenchmarkId")
    }
}

pub fn black_box<T>(x: T) -> T {
    x
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Behavioral offline stand-in for `proptest` (the API subset this
//! workspace uses).
//!
//! The `proptest!` macro expands each property into a plain `#[test]`
//! that *runs* the configured number of cases against inputs drawn from
//! the strategies with a deterministic per-test PRNG. No shrinking — a
//! failing case panics with the strategy inputs left opaque — but the
//! properties themselves execute for real, which is the point on
//! machines with no crates registry.

use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 generator seeded from the test name, so runs
/// are reproducible without any environment setup.
#[derive(Debug, Clone)]
pub struct GenRng(u64);

impl GenRng {
    pub fn for_test(name: &str) -> GenRng {
        // FNV-1a over the name, folded into a fixed session constant.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        GenRng(h ^ 0x5EED_5EED_5EED_5EED)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A case outcome the `proptest!` runner understands; `Reject` is what
/// `prop_assume!` returns (the case is skipped, not failed).
#[derive(Debug)]
pub enum TestCaseError {
    Reject,
}

pub trait Strategy {
    type Value;

    /// Draws one value; `None` is a rejection (e.g. a filter miss) and
    /// makes the runner retry with fresh randomness.
    fn generate(&self, rng: &mut GenRng) -> Option<Self::Value>;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    fn prop_flat_map<O: Strategy, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut GenRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut GenRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.f)(v))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;

    fn generate(&self, rng: &mut GenRng) -> Option<O::Value> {
        (self.f)(self.inner.generate(rng)?).generate(rng)
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {
        $(impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut GenRng) -> Option<$t> {
                Some(rng.next_u64() as $t)
            }
        })*
    };
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut GenRng) -> Option<bool> {
        Some(rng.next_u64() & 1 == 1)
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut GenRng) -> Option<f64> {
        Some(rng.unit_f64())
    }
}

pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut GenRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut GenRng) -> Option<$t> {
                    assert!(self.start < self.end, "empty strategy range");
                    let lo = self.start as i128;
                    let span = (self.end as i128 - lo) as u128;
                    Some((lo + (rng.next_u64() as u128 % span) as i128) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut GenRng) -> Option<$t> {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    let lo = start as i128;
                    let span = (end as i128 - lo) as u128 + 1;
                    Some((lo + (rng.next_u64() as u128 % span) as i128) as $t)
                }
            }
        )*
    };
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut GenRng) -> Option<f64> {
        assert!(self.start < self.end, "empty strategy range");
        Some(self.start + rng.unit_f64() * (self.end - self.start))
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut GenRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, G: 5);

/// `prop_oneof!`'s expansion: draw uniformly among boxed alternatives.
/// (Real proptest supports weights; the workspace only uses the uniform
/// form.)
pub struct OneOf<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut GenRng) -> Option<T> {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = (rng.next_u64() as usize) % self.0.len();
        self.0[i].generate(rng)
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf(::std::vec![$(::std::boxed::Box::new($strat)),+])
    };
}

pub mod collection {
    //! `proptest::collection` subset: random-length `Vec`s.

    use super::{GenRng, Strategy};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, len_range)`: a `Vec` whose length is drawn from
    /// `size` and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut GenRng) -> Option<Vec<S::Value>> {
            let n = Strategy::generate(&self.size, rng)?;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::ProptestConfig::with_cases(32)) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            #[allow(unused_variables, unused_mut)]
            fn $name() {
                let __cases = ($cfg).cases;
                let mut __rng = $crate::GenRng::for_test(stringify!($name));
                let mut __ran: u32 = 0;
                let mut __attempts: u32 = 0;
                while __ran < __cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= __cases.saturating_mul(64).max(1024),
                        "proptest stub: {} rejected too many cases",
                        stringify!($name),
                    );
                    $(
                        let $pat = match $crate::Strategy::generate(&($strat), &mut __rng) {
                            ::std::option::Option::Some(v) => v,
                            ::std::option::Option::None => continue,
                        };
                    )+
                    let mut __case =
                        move || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            Ok(())
                        };
                    match __case() {
                        ::std::result::Result::Ok(()) => __ran += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Just, ProptestConfig, Strategy,
    };

    /// Namespaced re-exports mirroring real proptest's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

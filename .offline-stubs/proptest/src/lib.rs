//! Typecheck-only stub of `proptest`. The `proptest!` macro expands each
//! property into a plain `#[test]` whose body *typechecks* against values
//! conjured from the strategies via `strategy_value` (which panics at
//! runtime — these tests are never meant to run against the stub).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub trait Strategy {
    type Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    fn prop_flat_map<O: Strategy, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { inner: self, f }
    }
}

#[allow(dead_code)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
}

#[allow(dead_code)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
}

#[allow(dead_code)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;
}

pub struct Any<T>(PhantomData<T>);

impl<T> Strategy for Any<T> {
    type Value = T;
}

pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
}

impl<T> Strategy for Range<T> {
    type Value = T;
}

impl<T> Strategy for RangeInclusive<T> {
    type Value = T;
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// Conjures a `Value` for typechecking; panics if ever executed.
pub fn strategy_value<S: Strategy>(_s: &S) -> S::Value {
    unimplemented!("proptest stub: properties cannot run without the real crate")
}

pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { $($rest)* }
    };
    ($($(#[$meta:meta])* fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            #[allow(unused_variables, unreachable_code, unused_mut)]
            fn $name() {
                let mut case = || -> ::std::result::Result<(), ::std::string::String> {
                    $(let $pat = $crate::strategy_value(&($strat));)+
                    $body
                    Ok(())
                };
                let _ = case();
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($($t:tt)*) => { assert!($($t)*) };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

//! Quickstart: build the paper's three topologies, route them, and race a
//! small skewed workload through the packet simulator.
//!
//! Run with: `cargo run --release --example quickstart`

use spineless::core::fct::{generate_workload, run_cell, TmKind};
use spineless::core::topos::{EvalTopos, Scale};
use spineless::prelude::*;
use spineless::topo::metrics::summarize;

fn main() {
    // 1. The evaluation trio (§5.1) at quick-run scale.
    let topos = EvalTopos::build(Scale::Small, 42);
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(42);
    println!("== topologies ==");
    for t in [&topos.leafspine, &topos.dring, &topos.rrg] {
        let s = summarize(t, &mut rng).expect("summary");
        println!(
            "{:<22} switches={:<3} racks={:<3} servers={:<5} links={:<5} diam={:?} \
             mean-path={:.2} spectral-gap={:.3} NSR={:.3}",
            s.name,
            s.switches,
            s.racks,
            s.servers,
            s.links,
            s.diameter.expect("connected"),
            s.mean_path.expect("connected"),
            s.spectral_gap,
            s.nsr.mean,
        );
    }

    // 2. A skewed workload (synthetic Facebook-frontend-like TM), scaled to
    //    30% spine utilization on the leaf-spine, offered to all three.
    let window_ns = 1_000_000;
    let offered = topos.offered_bytes(0.3, window_ns, 10.0);
    println!("\n== skewed-traffic FCT shootout ({offered} offered bytes) ==");
    let combos = [
        (&topos.leafspine, RoutingScheme::Ecmp),
        (&topos.dring, RoutingScheme::ShortestUnion(2)),
        (&topos.rrg, RoutingScheme::ShortestUnion(2)),
    ];
    for (topo, scheme) in combos {
        let flows = generate_workload(TmKind::FbSkewed, topo, offered, window_ns, 7);
        let cell = run_cell(topo, scheme, &flows, "FB skewed", SimConfig::default(), 7);
        println!(
            "{:<22} {:<18} median={:.3} ms   p99={:.3} ms   ({} flows, {} drops)",
            cell.topo, cell.routing, cell.median_ms, cell.p99_ms, cell.flows, cell.dropped
        );
    }
    println!("\nFlat topologies should show lower tail FCTs than the leaf-spine —");
    println!("that is the paper's headline result (Fig. 4).");
}

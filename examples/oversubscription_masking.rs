//! §3.1's core claim, demonstrated end-to-end: a flat network built from a
//! leaf-spine's exact hardware masks rack oversubscription for skewed
//! traffic, approaching the UDF = 2 bound — while uniform traffic shows no
//! such gap.
//!
//! Run with: `cargo run --release --example oversubscription_masking`

use spineless::fluid::solve;
use spineless::prelude::*;
use spineless::topo::flat::{flatten, nsr_flat_of_leafspine, nsr_leafspine};
use spineless::topo::metrics::nsr;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let (x, y) = (15u32, 5u32);
    let ls = LeafSpine::new(x, y).build();
    let flat = flatten(&ls, 7).expect("flat rewiring");
    println!("baseline : {}", ls.name);
    println!("rewired  : {} (same {} switches, {} servers)", flat.name, flat.num_switches(), flat.num_servers());
    let nsr_ls = nsr(&ls).expect("leaf-spine is connected with >=2 racks");
    let nsr_flat = nsr(&flat).expect("flat rewiring preserves connectivity");
    println!(
        "NSR      : leaf-spine {:.3} (analytic {:.3}), flat {:.3} (analytic {:.3}) => UDF = {:.2}\n",
        nsr_ls.mean,
        nsr_leafspine(x, y),
        nsr_flat.mean,
        nsr_flat_of_leafspine(x, y),
        nsr_flat.mean / nsr_ls.mean,
    );

    let fs_ls = ForwardingState::build(&ls.graph, RoutingScheme::Ecmp);
    let fs_flat = ForwardingState::build(&flat.graph, RoutingScheme::ShortestUnion(2));

    // Skewed: one hot rack's servers all send to a few remote racks.
    // The leaf-spine's hot rack chokes on its y uplinks; the flat rewiring
    // has ~2x the exit capacity per server.
    let mut rng = SmallRng::seed_from_u64(1);
    // Clients: every server of rack 0 (ids 0..x). Each sends to three
    // random servers in other racks.
    let mut skewed: Vec<(u32, u32)> = Vec::new();
    for c in 0..x {
        for _ in 0..3 {
            skewed.push((c, rng.gen_range(x..ls.num_servers())));
        }
    }
    let t_ls = solve(&ls, &fs_ls, &skewed, 2).total_rate();
    let t_flat = solve(&flat, &fs_flat, &skewed, 2).total_rate();
    println!("skewed traffic (hot rack out):");
    println!("  leaf-spine aggregate : {t_ls:.2} link-rates");
    println!("  flat aggregate       : {t_flat:.2} link-rates");
    println!("  flat / leaf-spine    : {:.2}  (UDF bound: 2.0)\n", t_flat / t_ls);

    // Uniform: everyone talks to everyone — no single rack bottleneck, so
    // flatness buys little.
    let uniform: Vec<(u32, u32)> = (0..200)
        .map(|_| {
            let a = rng.gen_range(0..ls.num_servers());
            let b = loop {
                let b = rng.gen_range(0..ls.num_servers());
                if b != a {
                    break b;
                }
            };
            (a, b)
        })
        .collect();
    let u_ls = solve(&ls, &fs_ls, &uniform, 3).mean_rate();
    let u_flat = solve(&flat, &fs_flat, &uniform, 3).mean_rate();
    println!("uniform traffic (200 random pairs):");
    println!("  leaf-spine mean rate : {u_ls:.3}");
    println!("  flat mean rate       : {u_flat:.3}");
    println!("  flat / leaf-spine    : {:.2}  (expected ≈ 1)", u_flat / u_ls);
}

//! Design-space search demo: sweep a small equipment envelope (switch
//! radix × switch budget × topology family) and print the Pareto frontier
//! over (equipment cost, NSR, fluid permutation throughput).
//!
//! The sweep exercises all three of the engine's accelerations —
//! incremental expansion along each family's growth axis, structural
//! memoization of coinciding designs, and dominance pruning of hopeless
//! fluid solves — and asserts that none of them (nor the worker count)
//! changes the frontier by a single bit.
//!
//! Run with: `cargo run --release --example design_search`
//! CI smoke mode (smaller envelope): add `-- --quick`

use spineless::prelude::*;

fn fingerprint(r: &SearchResult) -> Vec<(String, u64, u64)> {
    r.frontier_cells()
        .map(|c| (c.name.clone(), c.cost(), c.throughput.unwrap().to_bits()))
        .collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let spec = if quick {
        SearchSpec {
            radii: vec![8, 12],
            counts: vec![10, 14, 18],
            max_pairs: 1024,
            ..SearchSpec::small(42)
        }
    } else {
        SearchSpec::small(42)
    };
    println!(
        "sweeping {} families x {} radii x {} budgets under {}",
        spec.families.len(),
        spec.radii.len(),
        spec.counts.len(),
        spec.scheme.label()
    );
    let result = run_search(&spec);
    assert!(!result.cells.is_empty(), "sweep produced no designs");
    assert!(!result.frontier.is_empty(), "sweep produced no frontier");
    assert!(result.stats.incremental > 0, "growth rows never reused state");

    println!();
    println!("== Pareto frontier ==  (minimize cost & NSR, maximize throughput)");
    println!(
        "{:<36} {:>6} {:>8} {:>7} {:>7} {:>8}",
        "design", "radix", "cost", "NSR", "UDF", "tput"
    );
    for c in result.frontier_cells() {
        println!(
            "{:<36} {:>6} {:>8} {:>7.3} {:>7} {:>8.4}",
            c.name,
            c.radix,
            c.cost(),
            c.nsr,
            c.udf.map_or("-".into(), |u| format!("{u:.2}")),
            c.throughput.unwrap(),
        );
    }
    let s = result.stats;
    println!();
    println!(
        "{} cells: {} cold builds, {} incremental, {} memo hits, {} solves pruned",
        s.cells, s.cold, s.incremental, s.memo, s.pruned
    );

    // The frontier must not depend on how the sweep was parallelized or
    // accelerated.
    let base = fingerprint(&result);
    for workers in [1usize, 2] {
        let alt = run_search(&SearchSpec { workers, ..spec.clone() });
        assert_eq!(fingerprint(&alt), base, "frontier drifted at {workers} workers");
    }
    let cold = run_search_reference(&spec);
    assert_eq!(fingerprint(&cold), base, "accelerations changed the frontier");
    println!("frontier identical across worker counts and vs the cold reference");

    // The paper's side of the story: some flat design should beat the
    // best fat-tree the same envelope can buy somewhere on the frontier.
    assert!(
        result.frontier_cells().any(|c| c.family != Family::FatTree),
        "no flat design on the frontier"
    );
}

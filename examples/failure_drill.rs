//! Live failure drill (paper §7, "Impact of failures"): cut a cable *under
//! a running flow*, let the control plane reconverge mid-run, and watch TCP
//! recover over the rerouted fabric — then compare against a control plane
//! that never reacts (a pure blackhole) and against the static
//! control-plane analysis.
//!
//! The drill:
//!
//! 1. **Probe run** — race the victim flow over the healthy DRing and read
//!    the per-link byte counters to find the cable its path actually uses
//!    (same seed ⇒ same ECMP hash ⇒ same path in every later run).
//! 2. **Reconvergence run** — cut that cable mid-transfer; after a 100 µs
//!    reconvergence delay the switches forward over a routing state rebuilt
//!    for the degraded fabric (`routing::failures::incremental_rebuild`),
//!    and the flow finishes on the detour.
//! 3. **Blackhole run** — the identical cut, but reconvergence never comes
//!    within the horizon: every retransmission dies on the dead cable and
//!    the flow burns an RTO (exponentially backed off) each round.
//!
//! Reconvergence must complete the flow with *strictly fewer*
//! retransmissions than the blackhole baseline accumulates — the
//! data-plane payoff of flatness: rerouting is local, no spine to resync.
//!
//! Run with: `cargo run --release --example failure_drill`
//! CI smoke mode (small, asserts only): `cargo run --example failure_drill -- --quick`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use spineless::core::fct::{generate_workload, run_cell, TmKind};
use spineless::core::recovery::{run_recovery_sweep, RecoveryConfig};
use spineless::graph::bfs;
use spineless::prelude::*;
use spineless::routing::failures::{assess, FailurePlan};
use spineless::sim::FlowRecord;
use std::sync::Arc;

/// What one drill run produced for the victim flow.
struct DrillOutcome {
    victim: FlowRecord,
    bystander: FlowRecord,
    dropped: u64,
    used_fib_cache: bool,
}

/// Runs victim + bystander over `topo` with `schedule` (empty = healthy).
fn drill_run(
    topo: &Topology,
    fs: &Arc<ForwardingState>,
    victim: (u32, u32, u64),
    bystander: (u32, u32, u64),
    schedule: Option<FailureSchedule>,
    seed: u64,
) -> DrillOutcome {
    let cfg = SimConfig { max_time_ns: 30_000_000_000, ..SimConfig::default() };
    let mut sim = Simulation::new(topo, fs.clone(), cfg, seed);
    sim.add_flow(victim.0, victim.1, victim.2, 0).expect("victim endpoints valid");
    sim.add_flow(bystander.0, bystander.1, bystander.2, 0).expect("bystander endpoints valid");
    if let Some(sched) = schedule {
        sim.set_failure_schedule(topo, fs.clone(), sched)
            .expect("schedule targets this topology's own edges");
    }
    let r = sim.run();
    DrillOutcome {
        victim: r.flows[0],
        bystander: r.flows[1],
        dropped: r.dropped_packets,
        used_fib_cache: r.used_fib_cache,
    }
}

fn live_drill(quick: bool) {
    let topo = DRing::uniform(6, 3, 32).build();
    let fs = Arc::new(ForwardingState::build(&topo.graph, RoutingScheme::ShortestUnion(2)));
    let seed = 11;

    // Victim: rack 0 to a maximally distant rack (a multi-hop path, so a
    // mid-path cable exists to cut). Bystander: an intra-rack flow whose
    // packets never touch a switch-switch cable.
    let racks = topo.racks();
    let dist = bfs::all_pairs_distances(&topo.graph);
    let far_rack = *racks
        .iter()
        .max_by_key(|&&r| dist[racks[0] as usize][r as usize])
        .expect("topology has racks");
    let src = topo.servers_on(racks[0]).next().expect("rack 0 has servers");
    let dst = topo.servers_on(far_rack).next().expect("far rack has servers");
    let by_pair: Vec<u32> = topo.servers_on(racks[1]).take(2).collect();
    let victim = (src, dst, 1_000_000u64);
    let bystander = (by_pair[0], by_pair[1], 250_000u64);

    // 1. Probe: find the cable the victim's path crosses (same seed pins
    // the same ECMP hash, hence the same path, in the runs below). The
    // bystander stays intra-rack, so the busiest switch-switch link
    // belongs to the victim.
    let cfg = SimConfig::default();
    let mut probe = Simulation::new(&topo, fs.clone(), cfg, seed);
    probe.add_flow(victim.0, victim.1, victim.2, 0).expect("victim endpoints valid");
    probe.add_flow(bystander.0, bystander.1, bystander.2, 0).expect("bystander endpoints valid");
    let probe_r = probe.run();
    let tx = probe.switch_link_tx_bytes();
    let busiest = tx
        .iter()
        .enumerate()
        .max_by_key(|&(_, &b)| b)
        .map(|(i, _)| i as u32)
        .expect("victim crosses the fabric");
    let cut_edge = busiest >> 1;
    let healthy_fct = probe_r.flows[0].fct_ns.expect("healthy run completes");
    // Cut mid-transfer: halfway through the healthy completion time.
    let cut_at = healthy_fct / 2;

    // 2. Reconvergence: the control plane reacts 100 µs after the cut.
    let reconv = drill_run(
        &topo,
        &fs,
        victim,
        bystander,
        Some(FailureSchedule::new(100_000).link_down(cut_at, cut_edge)),
        seed,
    );
    // 3. Blackhole: the identical cut, but reconvergence is an hour out —
    // far beyond the 30 s horizon, so it never arrives.
    let blackhole = drill_run(
        &topo,
        &fs,
        victim,
        bystander,
        Some(FailureSchedule::new(3_600_000_000_000).link_down(cut_at, cut_edge)),
        seed,
    );

    // The invariants CI pins (and the paper's point).
    assert!(
        reconv.victim.fct_ns.is_some(),
        "victim must finish once routing reconverges around the cut"
    );
    assert!(
        blackhole.victim.fct_ns.is_none(),
        "victim cannot finish while the blackhole persists"
    );
    assert!(
        reconv.victim.retransmits < blackhole.victim.retransmits,
        "reconvergence must cost strictly fewer retransmissions \
         ({} vs {})",
        reconv.victim.retransmits,
        blackhole.victim.retransmits
    );
    for (label, o) in [("reconvergence", &reconv), ("blackhole", &blackhole)] {
        assert!(
            o.bystander.fct_ns.is_some() && o.bystander.retransmits == 0,
            "{label}: intra-rack bystander must be untouched by the cut"
        );
        assert!(o.used_fib_cache, "{label}: fast datapath lost its FIB hot-cache");
    }

    if quick {
        println!(
            "failure_drill --quick: OK (victim recovered via reconvergence: \
             fct {:.3} ms, {} rtx vs {} rtx blackholed; bystander clean)",
            reconv.victim.fct_ns.expect("asserted above") as f64 / 1e6,
            reconv.victim.retransmits,
            blackhole.victim.retransmits
        );
        return;
    }

    println!("== live drill: cable cut under a running flow ==");
    println!(
        "victim {src}->{dst} (1 MB), cable {cut_edge} cut at {:.3} ms, healthy fct {:.3} ms",
        cut_at as f64 / 1e6,
        healthy_fct as f64 / 1e6
    );
    println!(
        "{:<14} {:>10} {:>6} {:>9} {:>7}",
        "control plane", "fct ms", "rtx", "timeouts", "drops"
    );
    for (label, o) in [("reconverge", &reconv), ("never (hole)", &blackhole)] {
        println!(
            "{label:<14} {:>10} {:>6} {:>9} {:>7}",
            o.victim
                .fct_ns
                .map(|ns| format!("{:.3}", ns as f64 / 1e6))
                .unwrap_or_else(|| "—".into()),
            o.victim.retransmits,
            o.victim.timeouts,
            o.dropped
        );
    }
    println!(
        "bystander (intra-rack) unaffected in both runs: fct {:.3} ms, 0 rtx",
        reconv.bystander.fct_ns.expect("asserted above") as f64 / 1e6
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    live_drill(quick);
    if quick {
        return;
    }

    let topo = DRing::uniform(8, 3, 32).build();
    println!(
        "\ntopology: {} ({} racks, {} links)",
        topo.name,
        topo.num_racks(),
        topo.num_links()
    );

    // Control-plane view: what does each failure level cost structurally?
    println!("\n== reconvergence & structure under random link cuts ==");
    println!(
        "{:>6} {:>9} {:>12} {:>12} {:>10} {:>9}",
        "cut %", "discon.", "mean cost", "(baseline)", "min div.", "BGP rnds"
    );
    for fraction in [0.05, 0.10, 0.20, 0.30] {
        let mut rng = SmallRng::seed_from_u64(7 + (fraction * 100.0) as u64);
        let plan = FailurePlan::random_links(&topo, fraction, &mut rng);
        let i = assess(&topo, RoutingScheme::ShortestUnion(2), &plan, 60).expect("assess");
        println!(
            "{:>6.0} {:>9} {:>12.3} {:>12.3} {:>10} {:>9}",
            fraction * 100.0,
            i.disconnected_pairs,
            i.mean_cost_after,
            i.mean_cost_before,
            i.min_diversity_after,
            i.bgp_rounds_after
        );
    }

    // Data-plane sweep (experiment X1b): live cuts with reconvergence,
    // leaf-spine vs the flat fabrics.
    println!("\n== live-cut FCT sweep (cut mid-run, 100 us reconvergence) ==");
    println!(
        "{:>28} {:>6} {:>5} {:>9} {:>9} {:>6} {:>6}",
        "combo", "cut %", "cut", "median ms", "p99 ms", "rtx", "unfin"
    );
    for cell in run_recovery_sweep(&RecoveryConfig::quick(21)) {
        println!(
            "{:>28} {:>6.0} {:>5} {:>9.3} {:>9.3} {:>6} {:>6}",
            format!("{}/{}", cell.topo, cell.routing),
            cell.fail_fraction * 100.0,
            cell.links_cut,
            cell.summary.median_ms,
            cell.summary.p99_ms,
            cell.summary.retransmits,
            cell.summary.unfinished
        );
    }

    // Static before/after comparison retained for contrast with the live
    // sweep above: rebuild on the already-degraded fabric.
    let mut rng = SmallRng::seed_from_u64(21);
    let plan = FailurePlan::random_links(&topo, 0.25, &mut rng);
    let degraded = plan.apply(&topo).expect("degraded topology");
    let window = 2_000_000;
    let offered = (0.18 * topo.num_servers() as f64 * 1.25 * window as f64) as u64;
    println!("\n== static FCT impact of losing 25% of cables (uniform traffic) ==");
    for (label, t) in [("healthy", &topo), ("degraded", &degraded)] {
        let flows = generate_workload(TmKind::Uniform, t, offered, window, 5);
        let cell = run_cell(
            t,
            RoutingScheme::ShortestUnion(2),
            &flows,
            "A2A",
            SimConfig::default(),
            5,
        );
        println!(
            "{label:<9} median={:.3} ms  p99={:.3} ms  drops={}  ({} flows)",
            cell.median_ms, cell.p99_ms, cell.dropped, cell.flows
        );
    }

    // Switch failure: power off one ToR.
    let plan = FailurePlan::random_switches(&topo, 1, &mut rng);
    let i = assess(&topo, RoutingScheme::ShortestUnion(2), &plan, 60).expect("assess");
    println!(
        "\nsingle-ToR failure: {} surviving rack pairs stay connected, \
         mean cost {:.3} (was {:.3}), BGP reconverges in {} rounds",
        i.surviving_pairs, i.mean_cost_after, i.mean_cost_before, i.bgp_rounds_after
    );
    println!("\nflatness pays off under failure: no switch is special, so losing");
    println!("one degrades capacity smoothly instead of severing a tier — and the");
    println!("live drill shows recovery is a detour away, not a resync away.");
}

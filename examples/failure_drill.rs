//! Failure drill (paper §7, "Impact of failures"): cut links and switches
//! on a DRing, watch BGP reconverge, and race the same workload through
//! the degraded fabric.
//!
//! Run with: `cargo run --release --example failure_drill`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use spineless::core::fct::{generate_workload, run_cell, TmKind};
use spineless::prelude::*;
use spineless::routing::failures::{assess, FailurePlan};

fn main() {
    let topo = DRing::uniform(8, 3, 32).build();
    println!("topology: {} ({} racks, {} links)", topo.name, topo.num_racks(), topo.num_links());

    // 1. Control-plane view: what does each failure level cost?
    println!("\n== reconvergence & structure under random link cuts ==");
    println!(
        "{:>6} {:>9} {:>12} {:>12} {:>10} {:>9}",
        "cut %", "discon.", "mean cost", "(baseline)", "min div.", "BGP rnds"
    );
    for fraction in [0.05, 0.10, 0.20, 0.30] {
        let mut rng = SmallRng::seed_from_u64(7 + (fraction * 100.0) as u64);
        let plan = FailurePlan::random_links(&topo, fraction, &mut rng);
        let i = assess(&topo, RoutingScheme::ShortestUnion(2), &plan, 60).expect("assess");
        println!(
            "{:>6.0} {:>9} {:>12.3} {:>12.3} {:>10} {:>9}",
            fraction * 100.0,
            i.disconnected_pairs,
            i.mean_cost_after,
            i.mean_cost_before,
            i.min_diversity_after,
            i.bgp_rounds_after
        );
    }

    // 2. Data-plane view: FCT before vs after losing 25% of cables.
    let mut rng = SmallRng::seed_from_u64(21);
    let plan = FailurePlan::random_links(&topo, 0.25, &mut rng);
    let degraded = plan.apply(&topo).expect("degraded topology");
    let window = 2_000_000;
    let offered = (0.18 * topo.num_servers() as f64 * 1.25 * window as f64) as u64;
    println!("\n== FCT impact of losing 25% of cables (uniform traffic) ==");
    for (label, t) in [("healthy", &topo), ("degraded", &degraded)] {
        let flows = generate_workload(TmKind::Uniform, t, offered, window, 5);
        let cell = run_cell(
            t,
            RoutingScheme::ShortestUnion(2),
            &flows,
            "A2A",
            SimConfig::default(),
            5,
        );
        println!(
            "{label:<9} median={:.3} ms  p99={:.3} ms  drops={}  ({} flows)",
            cell.median_ms, cell.p99_ms, cell.dropped, cell.flows
        );
    }

    // 3. Switch failure: power off one ToR.
    let plan = FailurePlan::random_switches(&topo, 1, &mut rng);
    let i = assess(&topo, RoutingScheme::ShortestUnion(2), &plan, 60).expect("assess");
    println!(
        "\nsingle-ToR failure: {} surviving rack pairs stay connected, \
         mean cost {:.3} (was {:.3}), BGP reconverges in {} rounds",
        i.surviving_pairs, i.mean_cost_after, i.mean_cost_before, i.bgp_rounds_after
    );
    println!("\nflatness pays off under failure: no switch is special, so losing");
    println!("one degrades capacity smoothly instead of severing a tier.");
}

//! Hybrid fluid+packet co-simulation smoke drill: the open-loop regime on
//! a small fabric, where pure-packet is still cheap enough to act as the
//! reference.
//!
//! Three checks, in increasing looseness:
//!
//! 1. **Bit-identity** — `HybridMode::PacketOnly` must reproduce the plain
//!    packet engine's report exactly (the hybrid wrapper adds nothing but
//!    routing of flows between planes).
//! 2. **Statistical agreement** — hybrid-mode mice FCT means and combined
//!    switch-link bytes must land inside the DESIGN.md §13 bands against
//!    pure-packet, averaged over a small seed family.
//! 3. **Speed direction** — hybrid must not be slower than pure-packet on
//!    an elephant-heavy open-loop workload (the full ≥5× bar lives in
//!    `bench_snapshot`'s `hybrid_openloop` tier; a smoke run only pins the
//!    sign so CI stays fast and unflaky).
//!
//! Run with: `cargo run --release --example hybrid_smoke`
//! CI smoke mode (smaller, asserts only): `cargo run --release --example hybrid_smoke -- --quick`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use spineless::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let topo = LeafSpine::new(4, 2).build();
    let fs = Arc::new(ForwardingState::build(&topo.graph, RoutingScheme::Ecmp));
    let tm = TrafficMatrix::uniform(&topo);
    let sizes = ParetoFlowSizes::paper();
    let threshold = 100_000u64;
    let window: u64 = if quick { 1_000_000 } else { 4_000_000 };
    let rate = 0.5; // bytes/ns offered — moderate load on 24 servers
    let cfg = SimConfig { max_time_ns: 50_000_000, ..Default::default() };
    let seeds: &[u64] = if quick { &[3, 7] } else { &[3, 5, 7, 11, 13] };

    let mut mice_ratio_sum = 0.0f64;
    let mut bytes_ratio_sum = 0.0f64;
    let mut pure_wall = 0.0f64;
    let mut hybrid_wall = 0.0f64;
    for &seed in seeds {
        let mut rng = SmallRng::seed_from_u64(seed);
        let flows = poisson_from_tm(&tm, &topo, rate, &sizes, window, &mut rng);

        // 1. PacketOnly bit-identity.
        let mut plain = Simulation::new(&topo, fs.clone(), cfg, seed);
        let pcfg = HybridConfig { mode: HybridMode::PacketOnly, ..Default::default() };
        let mut ponly = HybridSimulation::new(&topo, fs.clone(), cfg, pcfg, seed);
        for f in &flows.flows {
            plain.add_flow(f.src, f.dst, f.bytes, f.start_ns).expect("valid flow");
            ponly.add_flow(f.src, f.dst, f.bytes, f.start_ns).expect("valid flow");
        }
        let t0 = Instant::now();
        let rp = plain.run();
        pure_wall += t0.elapsed().as_secs_f64();
        let rpo = ponly.run();
        assert_eq!(rp, rpo.packet, "PacketOnly diverged from the plain engine");
        assert_eq!(rpo.resolves, 0, "PacketOnly must never touch the fluid plane");

        // 2. Hybrid agreement.
        let hcfg = HybridConfig { elephant_threshold_bytes: threshold, ..Default::default() };
        let mut hyb = HybridSimulation::new(&topo, fs.clone(), cfg, hcfg, seed);
        for f in &flows.flows {
            hyb.add_flow(f.src, f.dst, f.bytes, f.start_ns).expect("valid flow");
        }
        let t0 = Instant::now();
        let rh = hyb.run();
        hybrid_wall += t0.elapsed().as_secs_f64();
        assert!(
            rh.unfinished() <= rp.unfinished(),
            "hybrid left more flows unfinished ({}) than pure-packet ({})",
            rh.unfinished(),
            rp.unfinished()
        );
        let (mut psum, mut hsum, mut n) = (0.0f64, 0.0f64, 0u64);
        for (fp, fh) in rp.flows.iter().zip(&rh.flows) {
            if fp.bytes < threshold {
                if let (Some(a), Some(b)) = (fp.fct_ns, fh.fct_ns) {
                    psum += a as f64;
                    hsum += b as f64;
                    n += 1;
                }
            }
        }
        assert!(n > 0, "workload produced no finished mice");
        mice_ratio_sum += (hsum / n as f64) / (psum / n as f64);
        let pure_bytes: u64 = plain.switch_link_tx_bytes().iter().sum();
        let hybrid_bytes: f64 = hyb.switch_link_total_bytes().iter().sum();
        bytes_ratio_sum += hybrid_bytes / pure_bytes as f64;
    }
    let mice_ratio = mice_ratio_sum / seeds.len() as f64;
    let bytes_ratio = bytes_ratio_sum / seeds.len() as f64;
    println!(
        "hybrid smoke: {} seeds — mice mean-FCT ratio {mice_ratio:.3}, switch-link byte \
         ratio {bytes_ratio:.3}; pure {pure_wall:.2}s vs hybrid {hybrid_wall:.2}s",
        seeds.len()
    );
    // DESIGN.md §13 bands: the small-fabric seed-family agreement pin.
    assert!(
        mice_ratio > 0.5 && mice_ratio < 1.5,
        "mice mean-FCT ratio {mice_ratio:.3} outside [0.5, 1.5]"
    );
    assert!(
        (bytes_ratio - 1.0).abs() < 0.15,
        "switch-link byte ratio {bytes_ratio:.3} outside +/-15%"
    );
    // 3. Speed direction (full bar is in bench_snapshot). Quick mode runs
    // a handful of flows where wall times are noise, so only the full
    // drill pins the sign.
    if !quick {
        assert!(
            hybrid_wall < pure_wall,
            "hybrid ({hybrid_wall:.2}s) must not be slower than pure-packet ({pure_wall:.2}s)"
        );
    }
    println!("hybrid smoke: all agreement assertions passed");
}

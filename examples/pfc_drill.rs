//! PFC pause-tree drill (EXPERIMENTS.md P7): run the same synchronized
//! incast over flat fabrics (DRing, Jellyfish, De Bruijn) and over a
//! leaf-spine, with lossy drop-tail switches vs PFC lossless switches, and
//! measure how far the congestion *spreads*.
//!
//! The paper's flat fabrics keep traffic "in the mesh" instead of
//! funneling it through a spine tier. Under lossy switching that is pure
//! upside. Under PFC the picture changes: when the incast victim's port
//! fills, XOFF frames walk upstream hop by hop and pause every port that
//! feeds the hotspot — a *pause tree* (the classic lossless-RDMA-fabric
//! pathology). Where the tree lands differs by topology: in a leaf-spine
//! it climbs through the shared spine tier, which every rack pair depends
//! on; in a flat mesh it spreads across transit links, which bystander
//! traffic may be able to route around.
//!
//! What the drill measures, per topology × switching mode:
//!
//! * `pauses` / `links paused` — pause-tree size and its reach;
//! * `drops` — lossy switching's tail drops (PFC rows must show zero);
//! * incast completion and an innocent bystander flow's FCT — who pays
//!   for the hotspot, the incast or the bystanders.
//!
//! Transport is NACK-based go-back-N in both modes (the lossless-fabric
//! transport; on the lossy fabric its NACK rollback covers the drops), so
//! the switching discipline is the only variable.
//!
//! Run with: `cargo run --release --example pfc_drill`
//! CI smoke mode (small, asserts only): `cargo run --example pfc_drill -- --quick`

use spineless::prelude::*;
use spineless::sim::types::Transport;
use spineless::sim::PfcConfig;
use std::sync::Arc;

/// One topology × switching-mode cell of the study.
struct Cell {
    pauses: u64,
    links_paused: u64,
    max_backlog: u64,
    drops: u64,
    congestion_drops: u64,
    incast_done_ms: Option<f64>,
    bystander_ms: Option<f64>,
    unfinished: usize,
    delivered: u64,
}

/// Runs the incast + bystander workload over `topo`. `pfc = None` is the
/// lossy drop-tail baseline; `Some` turns every switch lossless.
fn run_incast(
    topo: &Topology,
    scheme: RoutingScheme,
    senders_per_rack: usize,
    bytes: u64,
    pfc: Option<PfcConfig>,
    seed: u64,
) -> Cell {
    let fs = Arc::new(ForwardingState::build(&topo.graph, scheme));
    let cfg = SimConfig {
        transport: Transport::GoBackN,
        pfc,
        // A deep fixed window (48 KB, RDMA-style static flow control):
        // go-back-N has no congestion window to collapse, so the fabric —
        // drops or pauses — is the only thing holding senders back. This
        // is what makes the pause tree's reach visible.
        initial_cwnd: 32,
        // PFC on a cyclic flat mesh can in principle deadlock; a finite
        // horizon turns that into `unfinished > 0` instead of a hang.
        max_time_ns: 2_000_000_000,
        ..Default::default()
    };
    let mut sim = Simulation::new(topo, fs, cfg, seed);
    let racks = topo.racks();
    let victim = topo.servers_on(racks[0]).next().expect("victim rack has servers");
    // Synchronized incast: the first few servers of every remote rack all
    // fire at the victim at t = 0 — the many-to-one pattern that builds
    // the deepest pause tree.
    let mut incast = 0usize;
    for &r in &racks[1..] {
        for src in topo.servers_on(r).take(senders_per_rack) {
            sim.add_flow(src, victim, bytes, 0).expect("incast endpoints valid");
            incast += 1;
        }
    }
    // Innocent bystander: a rack-1 → rack-2 flow that never touches the
    // victim's ports. It still shares the fabric with the incast — spine
    // downlinks in a leaf-spine, transit mesh links in a flat topology —
    // so its FCT measures how much of the pause tree lands on paths that
    // innocent traffic cannot avoid.
    let by_src = topo.servers_on(racks[1]).nth(senders_per_rack).expect("spare server");
    let by_dst = topo.servers_on(racks[2]).nth(senders_per_rack).expect("spare server");
    sim.add_flow(by_src, by_dst, 200_000, 0).expect("bystander endpoints valid");

    let r = sim.run();
    let incast_done = r.flows[..incast]
        .iter()
        .map(|f| f.fct_ns)
        .collect::<Option<Vec<_>>>()
        .map(|f| *f.iter().max().expect("incast is non-empty") as f64 / 1e6);
    Cell {
        pauses: r.pause_frames,
        links_paused: r.links_ever_paused,
        max_backlog: r.max_ingress_backlog,
        drops: r.dropped_packets,
        congestion_drops: r.congestion_drops,
        incast_done_ms: incast_done,
        bystander_ms: r.flows[incast].fct_ns.map(|ns| ns as f64 / 1e6),
        unfinished: r.unfinished(),
        delivered: r.delivered_bytes,
    }
}

fn check_lossless(label: &str, cell: &Cell, total_bytes: u64) {
    assert_eq!(cell.congestion_drops, 0, "{label}: PFC tail-dropped a data packet");
    assert_eq!(cell.unfinished, 0, "{label}: lossless incast must complete");
    assert!(cell.pauses > 0, "{label}: an incast this deep must trigger XOFF");
    assert!(
        cell.delivered >= total_bytes,
        "{label}: delivered {} below offered {total_bytes}",
        cell.delivered
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    if quick {
        // Small fabrics, invariants only: lossless means lossless, the
        // pause tree exists, and go-back-N delivers every byte.
        let pfc = PfcConfig { xoff_bytes: 20_000, xon_bytes: 8_000 };
        for (label, topo, scheme) in [
            (
                "dring",
                DRing::uniform(6, 2, 24).build(),
                RoutingScheme::ShortestUnion(2),
            ),
            ("leaf-spine", LeafSpine::new(6, 2).build(), RoutingScheme::Ecmp),
        ] {
            let n_senders = (topo.num_racks() - 1) as u64;
            let cell = run_incast(&topo, scheme, 1, 150_000, Some(pfc), 42);
            check_lossless(label, &cell, n_senders * 150_000 + 200_000);
            println!(
                "pfc_drill --quick [{label}]: OK ({} pauses over {} links, 0 drops, \
                 incast done {:.3} ms)",
                cell.pauses,
                cell.links_paused,
                cell.incast_done_ms.expect("asserted complete")
            );
        }
        return;
    }

    // The study proper: comparable fabrics (12-switch flat meshes at
    // matching server counts, a 12-leaf/4-spine leaf-spine), two senders
    // per remote rack, 150 KB each.
    let combos: Vec<(&str, Topology, RoutingScheme)> = vec![
        (
            "dring(6,2)",
            DRing::uniform(6, 2, 24).build(),
            RoutingScheme::ShortestUnion(2),
        ),
        (
            "jellyfish(12,d6)",
            Jellyfish::new(12, 6, 8, 16, 7)
                .expect("valid jellyfish")
                .topology()
                .expect("jellyfish builds"),
            RoutingScheme::ShortestUnion(2),
        ),
        (
            "debruijn(2,3)",
            DeBruijn::new(2, 3, 16).build(),
            RoutingScheme::ShortestUnion(2),
        ),
        ("leaf-spine(8,4)", LeafSpine::new(8, 4).build(), RoutingScheme::Ecmp),
    ];

    println!("== PFC pause-tree spreading under synchronized incast (P7) ==");
    println!(
        "incast: 2 senders x 150 KB from every remote rack -> one victim; \
         bystander: 200 KB rack1->rack2 off the victim's ports"
    );
    println!(
        "{:<18} {:<9} {:>7} {:>7} {:>12} {:>12} {:>10} {:>11} {:>6}",
        "topology", "switching", "drops", "pauses", "links paused", "backlog KB", "incast ms", "bystander", "unfin"
    );
    // Shallow-buffer thresholds (20 KB XOFF / 8 KB XON — less than one
    // sender's window): the regime where PFC actually fires hop-by-hop
    // instead of absorbing the whole incast in one port's headroom.
    let pfc_cfg = PfcConfig { xoff_bytes: 20_000, xon_bytes: 8_000 };
    for (label, topo, scheme) in &combos {
        for (mode, pfc) in [("lossy", None), ("pfc", Some(pfc_cfg))] {
            let cell = run_incast(topo, *scheme, 2, 150_000, pfc, 42);
            if pfc.is_some() {
                let senders = 2 * (topo.num_racks() as u64 - 1);
                check_lossless(label, &cell, senders * 150_000 + 200_000);
            }
            println!(
                "{:<18} {:<9} {:>7} {:>7} {:>12} {:>12.0} {:>10} {:>11} {:>6}",
                label,
                mode,
                cell.drops,
                cell.pauses,
                cell.links_paused,
                cell.max_backlog as f64 / 1000.0,
                cell.incast_done_ms
                    .map(|ms| format!("{ms:.3}"))
                    .unwrap_or_else(|| "—".into()),
                cell.bystander_ms
                    .map(|ms| format!("{ms:.3}"))
                    .unwrap_or_else(|| "—".into()),
                cell.unfinished
            );
        }
    }
    println!();
    println!("reading the table: lossy switching localizes the incast's damage as");
    println!("tail drops at the victim's ports; PFC converts the drops into pause");
    println!("trees of comparable size everywhere — but the trees land in different");
    println!("places. The leaf-spine's tree necessarily climbs through the shared");
    println!("spine tier, so the bystander (whose every path crosses a spine)");
    println!("inherits the hotspot's backpressure in full. The flat meshes spread");
    println!("the tree across transit links, where path diversity lets bystander");
    println!("traffic route around it — the DRing bystander is untouched.");
}

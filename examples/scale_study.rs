//! §6.3 in miniature: watch the DRing's edge over the expander evaporate
//! as supernodes are added — first structurally (bisection bandwidth stays
//! flat while the RRG's grows), then behaviourally (p99 FCT ratio).
//!
//! Run with: `cargo run --release --example scale_study`

use spineless::core::scale::{bisection_sweep, run_fig6, ScaleStudyConfig};
use spineless::sim::SimConfig;

fn main() {
    // Structure: absolute bisection cut, DRing vs equal-hardware RRG.
    println!("== bisection bandwidth vs scale ==");
    println!("{:>6} {:>12} {:>12} {:>8}", "racks", "DRing cut", "RRG cut", "ratio");
    for (racks, dring_cut, rrg_cut) in bisection_sweep(5..=12, 7) {
        println!(
            "{racks:>6} {dring_cut:>12} {rrg_cut:>12} {:>8.2}",
            rrg_cut as f64 / dring_cut as f64
        );
    }
    println!("The DRing's cut is set by two ring cross-sections and does not");
    println!("grow; the expander's grows with size — the O(n) gap of §3.2.\n");

    // Behaviour: a quick FCT sweep (reduced load; see the fig6 bench
    // harness for the paper-scale run).
    println!("== p99 FCT ratio DRing/RRG, uniform traffic ==");
    let cfg = ScaleStudyConfig {
        supernodes_from: 5,
        supernodes_to: 10,
        host_load: 0.05,
        window_ns: 1_500_000,
        seed: 11,
        sim: SimConfig::default(),
    };
    println!("{:>6} {:>14} {:>14} {:>8}", "racks", "DRing p99(ms)", "RRG p99(ms)", "ratio");
    for p in run_fig6(&cfg) {
        println!(
            "{:>6} {:>14.3} {:>14.3} {:>8.2}",
            p.racks, p.dring_p99_ms, p.rrg_p99_ms, p.ratio
        );
    }
    println!("\nRatios drifting upward with rack count reproduce Fig. 6's trend.");
}

//! The paper's §4 routing design, end to end: build the VRF graph for
//! Shortest-Union(2) on a DRing, verify Theorem 1, converge a distributed
//! BGP control plane over it, and inspect the path diversity it unlocks.
//!
//! Run with: `cargo run --release --example vrf_routing`

use spineless::graph::bfs;
use spineless::prelude::*;
use spineless::routing::bgp;
use spineless::routing::diversity::{pair_diversity, shortest_path_counts_by_distance};

fn main() {
    let k = 2;
    let dring = DRing::uniform(8, 3, 28).build(); // 24 racks, degree 12
    println!("topology: {} ({} racks)", dring.name, dring.num_racks());

    // 1. The VRF graph: K virtual routers per switch, costs via prepending.
    let vrf = VrfGraph::build(&dring.graph, k);
    println!(
        "VRF graph: {} virtual routers, {} virtual links (K = {k})",
        vrf.graph.num_nodes(),
        vrf.graph.num_arcs()
    );

    // 2. Theorem 1: host-VRF distance == max(physical distance, K).
    let phys = bfs::all_pairs_distances(&dring.graph);
    let mut checked = 0;
    for s in 0..dring.num_switches() {
        for t in 0..dring.num_switches() {
            if s == t {
                continue;
            }
            let l = phys[s as usize][t as usize] as u64;
            assert_eq!(vrf.host_distance(s, t), Some(l.max(k as u64)));
            checked += 1;
        }
    }
    println!("Theorem 1 verified on all {checked} ordered switch pairs ✓");

    // 3. Distributed eBGP over the VRF graph (the GNS3-prototype stand-in).
    let outcome = bgp::converge(&vrf);
    assert!(outcome.converged);
    println!(
        "BGP converged for {} prefixes in {} synchronous rounds",
        outcome.prefixes.len(),
        outcome.rounds
    );

    // 4. Path diversity: ECMP's famine between adjacent racks, fixed by
    //    Shortest-Union(2) (§4).
    println!("\nshortest-path counts by rack distance (ECMP's view):");
    for (d, min, mean) in shortest_path_counts_by_distance(&dring.graph, &dring.racks()) {
        println!("  distance {d}: min {min:>3} paths, mean {mean:>7.1}");
    }
    let adj = pair_diversity(&dring.graph, &vrf, 0, 3, 10_000);
    println!(
        "\nadjacent pair (racks 0, 3): {} shortest path, {} SU(2) paths, \
         {} edge-disjoint within SU(2)",
        adj.shortest_paths, adj.su_paths, adj.su_disjoint
    );
    println!(
        "paper's guarantee: ≥ n+1 = {} disjoint paths — holds: {}",
        3 + 1,
        adj.su_disjoint >= 4
    );
}

//! `spineless` — command-line companion for the library.
//!
//! Subcommands:
//!
//! * `topo`     — build a topology and print its structural summary;
//! * `routes`   — show the Shortest-Union(K) path set and diversity
//!   between two switches;
//! * `simulate` — run a quick FCT experiment on a topology + TM + scheme;
//! * `configs`  — emit the §4 BGP/VRF router configurations.
//!
//! Examples:
//!
//! ```console
//! $ spineless topo --kind dring --supernodes 8 --tors 3 --radix 32
//! $ spineless routes --kind dring --src 0 --dst 4 --k 2
//! $ spineless simulate --kind leafspine --x 15 --y 5 --tm skewed
//! $ spineless configs --kind dring --out ./configs
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use spineless::core::fct::{generate_workload, run_cell, TmKind};
use spineless::prelude::*;
use spineless::routing::diversity::pair_diversity;
use spineless::routing::{configgen, VrfGraph};
use spineless::topo::metrics::summarize;
use std::collections::HashMap;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
        exit(2);
    };
    let opts = parse_opts(rest);
    match cmd.as_str() {
        "topo" => cmd_topo(&opts),
        "routes" => cmd_routes(&opts),
        "simulate" => cmd_simulate(&opts),
        "configs" => cmd_configs(&opts),
        "help" | "--help" | "-h" => usage(),
        other => {
            eprintln!("unknown subcommand {other:?}");
            usage();
            exit(2);
        }
    }
}

fn usage() {
    eprintln!(
        "spineless <topo|routes|simulate|configs> [--kind dring|leafspine|rrg|xpander|dragonfly|slimfly]\n\
         common flags: --radix N --seed N\n\
         dring:        --supernodes N --tors N\n\
         leafspine:    --x N --y N\n\
         rrg/xpander:  --switches N --degree N --servers N\n\
         routes:       --src N --dst N --k N\n\
         simulate:     --tm uniform|r2r|skewed --scheme ecmp|su2|su3 --utilization F --window-ms F\n\
         configs:      --k N --out DIR"
    );
}

/// Parses `--key value` pairs.
fn parse_opts(rest: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < rest.len() {
        let k = rest[i].trim_start_matches("--").to_owned();
        if !rest[i].starts_with("--") || i + 1 >= rest.len() {
            eprintln!("expected --key value pairs, got {:?}", rest[i]);
            exit(2);
        }
        out.insert(k, rest[i + 1].clone());
        i += 2;
    }
    out
}

fn get<T: std::str::FromStr>(opts: &HashMap<String, String>, key: &str, default: T) -> T {
    match opts.get(key) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("bad value for --{key}: {v:?}");
            exit(2);
        }),
    }
}

fn build_topo(opts: &HashMap<String, String>) -> Topology {
    let kind = opts.get("kind").map(|s| s.as_str()).unwrap_or("dring");
    let seed: u64 = get(opts, "seed", 42);
    match kind {
        "dring" => DRing::uniform(
            get(opts, "supernodes", 8),
            get(opts, "tors", 3),
            get(opts, "radix", 32),
        )
        .build(),
        "leafspine" => LeafSpine::new(get(opts, "x", 15), get(opts, "y", 5)).build(),
        "rrg" => Rrg::uniform(
            get(opts, "switches", 24),
            get(opts, "degree", 8),
            get(opts, "servers", 6),
            get(opts, "radix", 16),
            seed,
        )
        .build(),
        "xpander" => Xpander::new(
            get(opts, "degree", 8),
            get(opts, "lift", 3),
            get(opts, "servers", 6),
            get(opts, "radix", 16),
            seed,
        )
        .build(),
        "dragonfly" => spineless::topo::dragonfly::Dragonfly::balanced(
            get(opts, "a", 4),
            get(opts, "h", 2),
            get(opts, "servers", 6),
            get(opts, "radix", 16),
        )
        .build(),
        "slimfly" => spineless::topo::slimfly::SlimFly::new(
            get(opts, "q", 5),
            get(opts, "servers", 4),
            get(opts, "radix", 12),
        )
        .build(),
        other => {
            eprintln!("unknown topology kind {other:?}");
            exit(2);
        }
    }
}

fn cmd_topo(opts: &HashMap<String, String>) {
    let t = build_topo(opts);
    let mut rng = SmallRng::seed_from_u64(get(opts, "seed", 42u64));
    let s = summarize(&t, &mut rng).expect("summary");
    println!("name              : {}", s.name);
    println!("switches / racks  : {} / {}", s.switches, s.racks);
    println!("servers           : {}", s.servers);
    println!("links             : {}", s.links);
    println!("diameter          : {:?}", s.diameter);
    println!("mean path length  : {:.3}", s.mean_path.unwrap_or(f64::NAN));
    println!("spectral gap      : {:.3}", s.spectral_gap);
    println!("bisection / switch: {:.3}", s.bisection_per_node);
    println!("NSR (min/mean/max): {:.3} / {:.3} / {:.3}", s.nsr.min, s.nsr.mean, s.nsr.max);
    println!("flat              : {}", t.is_flat());
}

fn cmd_routes(opts: &HashMap<String, String>) {
    let t = build_topo(opts);
    let (src, dst): (u32, u32) = (get(opts, "src", 0), get(opts, "dst", 1));
    let k: u32 = get(opts, "k", 2);
    if src >= t.num_switches() || dst >= t.num_switches() || src == dst {
        eprintln!("need distinct switches below {}", t.num_switches());
        exit(2);
    }
    let vrf = VrfGraph::build(&t.graph, k);
    let d = pair_diversity(&t.graph, &vrf, src, dst, 200);
    println!(
        "{} -> {}: distance {}, {} shortest paths, {} SU({k}) paths, {} edge-disjoint",
        src, dst, d.distance, d.shortest_paths, d.su_paths, d.su_disjoint
    );
    for (i, p) in vrf.router_paths(src, dst, 20).iter().enumerate() {
        println!("  path {i}: {p:?}");
    }
}

fn cmd_simulate(opts: &HashMap<String, String>) {
    let t = build_topo(opts);
    let scheme = match opts.get("scheme").map(|s| s.as_str()).unwrap_or("su2") {
        "ecmp" => RoutingScheme::Ecmp,
        "su2" => RoutingScheme::ShortestUnion(2),
        "su3" => RoutingScheme::ShortestUnion(3),
        other => {
            eprintln!("unknown scheme {other:?}");
            exit(2);
        }
    };
    let tm = match opts.get("tm").map(|s| s.as_str()).unwrap_or("uniform") {
        "uniform" => TmKind::Uniform,
        "r2r" => TmKind::RackToRack,
        "skewed" => TmKind::FbSkewed,
        other => {
            eprintln!("unknown tm {other:?}");
            exit(2);
        }
    };
    let seed: u64 = get(opts, "seed", 42);
    let window = (get(opts, "window-ms", 2.0f64) * 1e6) as u64;
    let load: f64 = get(opts, "utilization", 0.3);
    // Anchor offered load to the host injection capacity (works for any
    // topology, spine or not).
    let offered =
        (load * t.num_servers() as f64 * 1.25 * window as f64 * 0.3).max(1.0) as u64;
    let flows = generate_workload(tm, &t, offered, window, seed);
    let cell = run_cell(&t, scheme, &flows, "cli", SimConfig::default(), seed);
    println!("topology : {}", t.name);
    println!("scheme   : {}", scheme.label());
    println!("tm       : {:?} ({} flows)", tm, cell.flows);
    println!("median   : {:.3} ms", cell.median_ms);
    println!("p99      : {:.3} ms", cell.p99_ms);
    println!("mean     : {:.3} ms", cell.mean_ms);
    println!("drops    : {}", cell.dropped);
    println!("unfinished: {}", cell.unfinished);
}

fn cmd_configs(opts: &HashMap<String, String>) {
    let t = build_topo(opts);
    let k: u32 = get(opts, "k", 2);
    let out = opts.get("out").cloned().unwrap_or_else(|| "configs".to_owned());
    let vrf = VrfGraph::build(&t.graph, k);
    let cfgs = configgen::generate(&vrf, t.graph.edges());
    std::fs::create_dir_all(&out).expect("create output dir");
    for c in &cfgs {
        std::fs::write(format!("{out}/r{}.conf", c.router), &c.text).expect("write config");
    }
    println!("wrote {} configs (Shortest-Union({k})) to {out}/", cfgs.len());
}

//! # Spineless — flat data-center topologies with practical routing
//!
//! A complete Rust reproduction of *Spineless Data Centers* (Harsh,
//! Abdu Jyothi, Godfrey — HotNets '20): the DRing flat topology, the
//! Shortest-Union(K) routing scheme with its BGP/VRF realization, the
//! NSR/UDF analysis, and the full evaluation pipeline (packet-level TCP
//! simulation and max-min fluid throughput) that regenerates every figure
//! of the paper.
//!
//! This umbrella crate re-exports the workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`graph`] | graph substrate: BFS/Dijkstra, path enumeration, max-flow, spectral & cut metrics |
//! | [`topo`] | topology builders: leaf-spine, DRing, RRG/Jellyfish, Xpander, flat rewiring, NSR/UDF |
//! | [`routing`] | ECMP, Shortest-Union(K), the VRF graph, BGP control-plane simulation, path diversity |
//! | [`sim`] | packet-level discrete-event simulator with TCP NewReno |
//! | [`fluid`] | max-min fair fluid throughput solver |
//! | [`workload`] | traffic matrices, the C-S model, Pareto flow sizes |
//! | [`core`] | the paper's experiments: Fig. 4 FCT grid, Fig. 5 heatmaps, Fig. 6 scale study, UDF table |
//!
//! # Quickstart
//!
//! ```
//! use spineless::prelude::*;
//!
//! // Build the paper's three topologies at quick-run scale.
//! let topos = EvalTopos::build(Scale::Small, 42);
//!
//! // Route the DRing with Shortest-Union(2) and simulate a few flows.
//! let fs = ForwardingState::build(&topos.dring.graph, RoutingScheme::ShortestUnion(2));
//! let mut sim = Simulation::new(&topos.dring, fs, SimConfig::default(), 42);
//! sim.add_flow(0, 100, 200_000, 0).expect("valid flow");
//! let report = sim.run();
//! assert_eq!(report.unfinished(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use spineless_core as core;
pub use spineless_fluid as fluid;
pub use spineless_graph as graph;
pub use spineless_routing as routing;
pub use spineless_sim as sim;
pub use spineless_topo as topo;
pub use spineless_workload as workload;

/// The most commonly used types, one `use` away.
pub mod prelude {
    pub use spineless_core::fct::{paper_combos, FctConfig, TmKind, TopoKind};
    pub use spineless_core::search::{
        run_search, run_search_reference, DesignCell, Family, SearchResult, SearchSpec,
    };
    pub use spineless_core::topos::{EvalTopos, Scale};
    pub use spineless_fluid::solve as fluid_solve;
    pub use spineless_routing::{ForwardingState, RoutingScheme, VrfGraph};
    pub use spineless_sim::{
        Datapath, FailureEvent, FailureSchedule, HybridConfig, HybridMode, HybridReport,
        HybridSimulation, Scheduler, SimConfig, SimReport, Simulation,
    };
    pub use spineless_topo::debruijn::DeBruijn;
    pub use spineless_topo::dring::DRing;
    pub use spineless_topo::fattree::FatTree;
    pub use spineless_topo::jellyfish::Jellyfish;
    pub use spineless_topo::leafspine::LeafSpine;
    pub use spineless_topo::rrg::Rrg;
    pub use spineless_topo::xpander::Xpander;
    pub use spineless_topo::Topology;
    pub use spineless_workload::cs::CsAssignment;
    pub use spineless_workload::pareto::ParetoFlowSizes;
    pub use spineless_workload::{poisson_from_tm, FlowClass, FlowSet, TrafficMatrix};
}
